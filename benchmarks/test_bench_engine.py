"""Array-engine benchmark: 100-tenant fleet, vectorised vs object event loop.

The array engine's gate: a 100-tenant open-loop workload (tenants cycling
the four baseline methods so plan-signature groups stay realistic while
per-tenant bookkeeping dominates) on a generated 32-device fleet is driven
once through the epoch-batched object loop (:class:`ServingSimulator` over
``BatchPlanEvaluator`` with scalar :class:`TenantRuntime` bookkeeping) and
once through the array engine (``engine="array"`` — NumPy column commits
with epoch speculation).

The gate asserts the array engine's throughput is at least ``MIN_SPEEDUP``
(10x) the committed ``BENCH_serve.json`` batched throughput — the event
loop this engine supersedes, measured on its own gated workload — and that
the two loops' reports here are bit-identical (the parity contract,
re-checked on the gated workload itself).  When the committed serve
baseline is missing the gate records a skip instead of enforcing against
nothing.  The live object-loop ratio on this same workload is reported for
context but not gated: at this scale both loops share the evaluator cost,
so the small-run ratio is noisy.  Numbers land in ``BENCH_engine.json``
via the shared :mod:`_gate` bookkeeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.serving import SLO, PoissonArrivals, ServingSimulator, TenantSpec
from repro.serving.simulator import assert_reports_equal

NUM_DEVICES = 32
NUM_TENANTS = 100
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 2.0
DURATION_S = 60.0
DEADLINE_MS = 500.0
ROUNDS = 3
MIN_SPEEDUP = 10.0
MODEL_NAME = "vgg16"
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
SERVE_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _make_tenants(model, devices, network):
    plans = {
        method: BASELINE_REGISTRY[method]().plan(model, devices, network)
        for method in TENANT_METHODS
    }
    tenants = []
    for i in range(NUM_TENANTS):
        method = TENANT_METHODS[i % len(TENANT_METHODS)]
        tenants.append(
            TenantSpec(
                name=f"{method}-{i}",
                plan=plans[method],
                traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=1000 + i),
                slo=SLO(deadline_ms=DEADLINE_MS),
            )
        )
    return tenants


def _best_of(fn, rounds=ROUNDS):
    best_t, report = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        report = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, report


def _committed_serve_rps():
    try:
        value = json.loads(SERVE_BENCH_PATH.read_text()).get(
            "batched_requests_per_s"
        )
    except (OSError, ValueError):
        return None
    return float(value) if isinstance(value, (int, float)) else None


def test_bench_array_engine(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)

    # Object loop: scalar per-tenant bookkeeping, fresh batch evaluator per
    # round so the cold first epoch is included (no cross-round cache carry).
    def run_object():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(tenants, duration_s=DURATION_S, mode="batched")

    # Array engine: NumPy column commits + epoch speculation, same cold start.
    def run_array():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(
            tenants, duration_s=DURATION_S, mode="batched", engine="array"
        )

    t_object, object_report = _best_of(run_object)
    t_array, array_report = _best_of(run_array)

    assert_reports_equal(array_report, object_report)
    completed = array_report.total_completed
    array_rps = completed / t_array
    serve_rps = _committed_serve_rps()

    rows = {
        "scenario": scenario.name,
        "model": MODEL_NAME,
        "num_devices": NUM_DEVICES,
        "num_tenants": NUM_TENANTS,
        "tenant_methods": list(TENANT_METHODS),
        "arrival_rate_rps_per_tenant": RATE_RPS,
        "duration_s": DURATION_S,
        "requests_completed": completed,
        "epochs": array_report.epochs,
        "speculated": array_report.speculated,
        "rounds": ROUNDS,
        "object_requests_per_s": completed / t_object,
        "array_requests_per_s": array_rps,
        "live_object_over_array_ratio": t_object / t_array,
        "committed_serve_batched_requests_per_s": serve_rps,
        "bit_identical": True,  # assert_reports_equal above would have raised
        "deadline_miss_rate": array_report.deadline_miss_rate,
        "min_speedup_gate": MIN_SPEEDUP,
    }

    benchmark.pedantic(run_array, rounds=1, iterations=1, warmup_rounds=0)

    if serve_rps is None:
        recorded = record_gate_result(
            BENCH_PATH,
            {},
            enforced=False,
            skip_info={**rows, "reason": "no committed BENCH_serve.json baseline"},
        )
        print(f"\nBENCH_engine (gate skipped): {json.dumps(recorded, indent=2)}")
        return

    speedup = array_rps / serve_rps
    rows["speedup_vs_committed_serve"] = speedup
    recorded = record_gate_result(BENCH_PATH, rows)
    print(f"\nBENCH_engine: {json.dumps(recorded, indent=2)}")

    assert speedup >= MIN_SPEEDUP, (
        f"array engine regressed: {array_rps:.0f} req/s is {speedup:.2f}x the "
        f"committed serve-loop throughput ({serve_rps:.0f} req/s), below the "
        f"{MIN_SPEEDUP}x gate ({completed} requests, {NUM_TENANTS} tenants, "
        f"{NUM_DEVICES} devices, array {t_array * 1000:.0f} ms)"
    )
