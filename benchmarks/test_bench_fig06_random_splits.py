"""Fig. 6: effect of the number of random split decisions |Rr_s| in LC-PSS.

Paper finding: with small |Rr_s| the resulting partition (and hence IPS)
varies widely between runs; from |Rr_s| ~ 100 upwards the outcome stabilises.
The benchmark repeats LC-PSS + OSDS with different seeds per |Rr_s| value and
reports the min / mean / max IPS, for the paper's two cases (DB @ 50 Mbps and
NA on Nano).
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments import figures

COUNTS = (25, 50, 100)
REPEATS = int(os.environ.get("REPRO_BENCH_FIG6_REPEATS", "3"))


def test_fig06_random_split_count(benchmark, fast_harness):
    data = run_once(
        benchmark,
        lambda: figures.figure6(fast_harness, counts=COUNTS, repeats=REPEATS),
    )
    print("\n=== Fig. 6: IPS spread vs |Rr_s| (VGG-16) ===")
    for case, per_count in data.items():
        for count, stats in sorted(per_count.items()):
            print(
                f"  {case:10s} |Rr_s|={count:4d}  min={stats['min_ips']:6.2f}  "
                f"mean={stats['mean_ips']:6.2f}  max={stats['max_ips']:6.2f}"
            )
    for per_count in data.values():
        for stats in per_count.values():
            assert 0 < stats["min_ips"] <= stats["mean_ips"] <= stats["max_ips"]
        # The spread at the largest count is no wider than at the smallest
        # (stability improves with more random split decisions).
        smallest = per_count[min(per_count)]
        largest = per_count[max(per_count)]
        spread_small = smallest["max_ips"] - smallest["min_ips"]
        spread_large = largest["max_ips"] - largest["min_ips"]
        # Stability does not get dramatically worse with more random splits
        # (with the paper's 50 repetitions it strictly improves; the fast
        # configuration uses few repeats, so allow sampling noise).
        assert spread_large <= spread_small + 3.0
