"""Fig. 11: IPS of seven further CNN models on Group NA with Nano providers."""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary

DEFAULT_MODELS = ("resnet50", "ssd_vgg16", "voxelnet")


def _models():
    if os.environ.get("REPRO_BENCH_ALL_MODELS"):
        return figures.EXTRA_MODELS
    return DEFAULT_MODELS


def test_fig11_models_on_na_nano(benchmark, model_sweep_harness):
    data = run_once(benchmark, lambda: figures.figure11(model_sweep_harness, models=_models()))
    print("\n" + format_ips_table(data, methods=list(ALL_METHODS),
                                  title="=== Fig. 11: IPS per model (NA, Nano) ==="))
    print("DistrEdge speedup over best baseline per model:",
          {k: round(v, 2) for k, v in speedup_summary(data).items()})
    for model, row in data.items():
        assert all(v > 0 for v in row.values()), model
        best_baseline = max(v for k, v in row.items() if k != "distredge")
        assert row["distredge"] >= 0.85 * best_baseline, model
