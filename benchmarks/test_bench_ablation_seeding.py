"""Ablation: heuristic seeding of the OSDS search.

The reproduction seeds Algorithm 2's episode loop with the offload corner and
capability-proportional splits (the paper's best-ever-recording makes this a
pure superset of candidates).  This ablation quantifies how much of the final
quality comes from seeding versus from the DDPG search itself at a small
episode budget.
"""

from __future__ import annotations

from benchmarks.conftest import EPISODES, run_once
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.osds import OSDSConfig
from repro.experiments.scenarios import ScenarioCatalog
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator


def test_ablation_heuristic_seeding(benchmark):
    def run():
        model = model_zoo.vgg16()
        scenario = ScenarioCatalog.table1_groups(300.0)["DB"]
        devices, network = scenario.build(seed=0)
        evaluator = PlanEvaluator(devices, network)
        out = {}
        for label, seeded in (("seeded", True), ("unseeded", False)):
            planner = DistrEdge(
                DistrEdgeConfig(
                    num_random_splits=15,
                    osds=OSDSConfig(max_episodes=EPISODES, seed=0),
                    seed=0,
                    seed_with_heuristics=seeded,
                )
            )
            plan = planner.plan(model, devices, network)
            out[label] = evaluator.evaluate(plan).end_to_end_ms
        return out

    data = run_once(benchmark, run)
    print("\n=== Ablation: OSDS heuristic seeding (DB, 300 Mbps, VGG-16) ===")
    for label, latency in data.items():
        print(f"  {label:9s} {latency:7.1f} ms ({1000.0 / latency:5.2f} IPS)")
    # Seeding can only help (best-ever recording over a superset of episodes).
    assert data["seeded"] <= data["unseeded"] * 1.05
