"""Ablation: profile representation used for planning.

The paper allows the controller to consume measured tables or regression
models.  This ablation plans the same deployment with (a) the ground-truth
latency model, (b) a measured table profile, and (c) a linear-regression
profile, then evaluates every plan on the ground truth.  The linear profile
hides the nonlinear staircase, so its plan should be no better — this is the
mechanism behind AOFL's misallocation.
"""

from __future__ import annotations

from benchmarks.conftest import EPISODES, run_once
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.osds import OSDSConfig
from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import LinearProfile, TabularProfile
from repro.experiments.scenarios import ScenarioCatalog
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.oracles import profiles_by_device


def test_ablation_profile_representation(benchmark):
    def run():
        model = model_zoo.vgg16()
        scenario = ScenarioCatalog.table1_groups(50.0)["DB"]
        devices, network = scenario.build(seed=0)
        truth_evaluator = PlanEvaluator(devices, network)

        per_type_points = {}
        for device in devices:
            if device.type_name in per_type_points:
                continue
            profiler = LatencyProfiler(device.dtype, noise_std=0.02, repeats=20, seed=0)
            per_type_points[device.type_name] = profiler.profile_model(
                model, heights_per_layer=16
            )

        variants = {
            "ground_truth": None,
            "tabular_profile": profiles_by_device(
                devices,
                {k: TabularProfile.from_points(v) for k, v in per_type_points.items()},
            ),
            "linear_profile": profiles_by_device(
                devices,
                {k: LinearProfile.from_points(v) for k, v in per_type_points.items()},
            ),
        }
        episodes = max(EPISODES // 2, 30)
        out = {}
        for label, profiles in variants.items():
            planner = DistrEdge(
                DistrEdgeConfig(
                    num_random_splits=15,
                    osds=OSDSConfig(max_episodes=episodes, seed=0),
                    seed=0,
                )
            )
            plan = planner.plan(model, devices, network, profiles=profiles)
            out[label] = truth_evaluator.evaluate(plan).end_to_end_ms
        return out

    data = run_once(benchmark, run)
    print("\n=== Ablation: planning profile representation (DB, 50 Mbps, VGG-16) ===")
    for label, latency in data.items():
        print(f"  {label:16s} true latency {latency:7.1f} ms ({1000.0 / latency:5.2f} IPS)")
    # Planning against an accurate table lands close to planning against the
    # ground truth; the coarse linear fit cannot do better than the table.
    assert data["tabular_profile"] <= data["ground_truth"] * 1.3
    assert data["linear_profile"] >= data["tabular_profile"] * 0.8
