"""Trace-analysis gate: attribution must be cheap relative to serving.

``repro analyze`` is meant to run casually after every traced run, so the
critical-path analyzer has to stay a small fraction of the cost of
producing the trace in the first place.  This bench serves the 100-tenant,
32-device fleet of ``test_bench_obs.py`` with a live tracer, materialises
the canonical event stream once (export cost, paid by ``--trace-json``
anyway), then times :func:`repro.obs.analysis.analyze_events` over it and
gates the analysis at ``MAX_ANALYZE_RATIO`` (0.5x) of the traced serving
time on the same machine — a relative gate, so it always enforces.  The
serving side is timed end-to-end as ``repro serve --trace-json`` pays it:
the run plus the canonical-stream materialisation, which is what it costs
to *have* a trace to analyze.

The speed means nothing if the numbers are wrong, so the gate also
re-asserts the exactness invariant on the full workload: every one of the
~12k request tilings must telescope bit-exactly to its committed latency,
and the per-tenant rollups must agree with the serving report.  Numbers
land in ``BENCH_analysis.json`` via the shared :mod:`_gate` bookkeeping;
``speedup_analyze_vs_serve`` feeds the trend check.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.obs.analysis import analyze_events
from repro.runtime.batch import BatchPlanEvaluator
from repro.serving import SLO, PoissonArrivals, ServingSimulator, TenantSpec

NUM_DEVICES = 32
NUM_TENANTS = 100
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 2.0
DURATION_S = 60.0
DEADLINE_MS = 500.0
ROUNDS = 3
MAX_ANALYZE_RATIO = 0.5
MODEL_NAME = "vgg16"
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_analysis.json"


def _make_tenants(model, devices, network):
    plans = {
        method: BASELINE_REGISTRY[method]().plan(model, devices, network)
        for method in TENANT_METHODS
    }
    return [
        TenantSpec(
            name=f"{TENANT_METHODS[i % len(TENANT_METHODS)]}-{i}",
            plan=plans[TENANT_METHODS[i % len(TENANT_METHODS)]],
            traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=1000 + i),
            slo=SLO(deadline_ms=DEADLINE_MS),
        )
        for i in range(NUM_TENANTS)
    ]


def _best_of(fn, rounds=ROUNDS):
    best_t, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, result


def test_bench_analysis_speed_and_exactness(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)

    def run_traced():
        tracer = Tracer()
        report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
            tenants, duration_s=DURATION_S, mode="batched", engine="array",
            tracer=tracer,
        )
        # Materialising the canonical stream is part of the serving side:
        # --trace-json pays it on export, before any trace exists to read.
        return report, tracer.sorted_events()

    t_serve, (report, events) = _best_of(run_traced)

    t_analyze, analysis = _best_of(lambda: analyze_events(events))

    # Exactness on the full gated workload: every request's tiling
    # telescopes bit-for-bit to its committed latency.
    analysis.check_exact()
    assert analysis.num_requests == report.total_completed
    for tenant in report.tenants:
        rollup = analysis.tenant(tenant.name)
        assert rollup.requests == tenant.num_completed
        assert math.isclose(
            rollup.latency_ms, float(tenant.latency_ms.sum()), rel_tol=1e-9
        )

    ratio = t_analyze / t_serve
    rows = {
        "scenario": scenario.name,
        "model": MODEL_NAME,
        "num_devices": NUM_DEVICES,
        "num_tenants": NUM_TENANTS,
        "duration_s": DURATION_S,
        "requests_analyzed": analysis.num_requests,
        "events_analyzed": len(events),
        "rounds": ROUNDS,
        "serve_traced_s": t_serve,
        "analyze_s": t_analyze,
        "analyze_to_serve_ratio": ratio,
        "exact": True,  # check_exact above would have raised
        "max_analyze_ratio_gate": MAX_ANALYZE_RATIO,
        "speedup_analyze_vs_serve": t_serve / t_analyze,
    }

    benchmark.pedantic(lambda: analyze_events(events), rounds=1, iterations=1,
                       warmup_rounds=0)

    recorded = record_gate_result(BENCH_PATH, rows)
    print(f"\nBENCH_analysis: {json.dumps(recorded, indent=2)}")

    assert ratio <= MAX_ANALYZE_RATIO, (
        f"critical-path analysis too slow: {t_analyze * 1000:.0f} ms for "
        f"{analysis.num_requests} requests vs {t_serve * 1000:.0f} ms serving "
        f"(ratio {ratio:.2f} > gate {MAX_ANALYZE_RATIO})"
    )
