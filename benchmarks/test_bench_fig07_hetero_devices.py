"""Fig. 7: IPS under heterogeneous device groups (Table I) at 50/300 Mbps.

Expected shape (paper): DistrEdge is the best or tied-best method in every
group/bandwidth cell; equal-split methods collapse in group DC (the Pi3 drags
them below 1 IPS); layer-by-layer methods lose badly at 50 Mbps.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary


def test_fig07_heterogeneous_devices(benchmark, fast_harness):
    data = run_once(
        benchmark, lambda: figures.figure7(fast_harness, bandwidths=(50.0, 300.0))
    )
    print("\n" + format_ips_table(data, methods=list(ALL_METHODS),
                                  title="=== Fig. 7: IPS, heterogeneous devices (VGG-16) ==="))
    speedups = speedup_summary(data)
    print("DistrEdge speedup over best baseline per cell:",
          {k: round(v, 2) for k, v in speedups.items()})

    for cell, row in data.items():
        assert all(v > 0 for v in row.values()), cell
        # DistrEdge never loses meaningfully to any baseline (its search space
        # contains every baseline's corner solutions).
        best_baseline = max(v for k, v in row.items() if k != "distredge")
        assert row["distredge"] >= 0.9 * best_baseline, cell
    # Equal-split methods collapse when a Pi3 is in the cluster (Group DC).
    assert data["DC-50Mbps"]["deeperthings"] < 2.0
