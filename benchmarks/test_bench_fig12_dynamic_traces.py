"""Fig. 12: highly dynamic per-device throughput traces (40-100 Mbps)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig12_dynamic_traces(benchmark):
    data = run_once(benchmark, lambda: figures.figure12(duration_s=3600.0, seed=0))
    print("\n=== Fig. 12: highly dynamic traces (1 hour, per device) ===")
    for name, stats in data.items():
        print(f"  {name}: mean={stats['mean_mbps']:5.1f} std={stats['std_mbps']:5.1f} "
              f"range=[{stats['min_mbps']:.1f}, {stats['max_mbps']:.1f}]")
    for stats in data.values():
        assert 40.0 <= stats["min_mbps"] and stats["max_mbps"] <= 100.0
        # High volatility is the defining property versus Fig. 4.
        assert stats["std_mbps"] > 5.0
