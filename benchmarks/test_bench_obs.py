"""Observability overhead gate: tracing must be free when off, cheap when on.

The ``repro.obs`` integration contract has two halves, and this bench
gates both on the array engine's own gated workload (the 100-tenant,
32-device fleet of ``test_bench_engine.py``):

* **Off is free.**  With no tracer/metrics attached (the default), the
  instrumented loops pay one ``enabled`` attribute check per hook site.
  The gate asserts throughput within ``MAX_OFF_LOSS`` (5%) of the
  committed ``BENCH_engine.json`` array throughput — the same workload,
  measured before the hooks existed or on the last enforced run.
* **On is bounded.**  With a live ``Tracer`` + ``MetricsRegistry``, the
  run slows by at most ``MAX_ON_OVERHEAD`` (25%): lifecycle derivation is
  deferred (``Tracer.defer_report`` is O(1); events materialise at first
  trace read, i.e. export time), so the run itself pays only live
  emission and the metrics recording.

Both halves re-assert bit-identical reports (tracing must never touch a
committed float).  When the committed engine baseline is missing or its
gate did not enforce, the absolute comparison is meaningless on this
machine and the gate records a skip instead.  Numbers land in
``BENCH_obs.json`` via the shared :mod:`_gate` bookkeeping; the
``speedup_*`` ratios feed the trend check.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.obs import MetricsRegistry, Tracer
from repro.runtime.batch import BatchPlanEvaluator
from repro.serving import SLO, PoissonArrivals, ServingSimulator, TenantSpec
from repro.serving.simulator import assert_reports_equal

NUM_DEVICES = 32
NUM_TENANTS = 100
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 2.0
DURATION_S = 60.0
DEADLINE_MS = 500.0
ROUNDS = 3
MAX_OFF_LOSS = 0.05
MAX_ON_OVERHEAD = 0.25
MODEL_NAME = "vgg16"
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
ENGINE_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _make_tenants(model, devices, network):
    plans = {
        method: BASELINE_REGISTRY[method]().plan(model, devices, network)
        for method in TENANT_METHODS
    }
    return [
        TenantSpec(
            name=f"{TENANT_METHODS[i % len(TENANT_METHODS)]}-{i}",
            plan=plans[TENANT_METHODS[i % len(TENANT_METHODS)]],
            traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=1000 + i),
            slo=SLO(deadline_ms=DEADLINE_MS),
        )
        for i in range(NUM_TENANTS)
    ]


def _best_of(fn, rounds=ROUNDS):
    best_t, report = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        report = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, report


def _committed_engine_rps():
    try:
        data = json.loads(ENGINE_BENCH_PATH.read_text())
    except (OSError, ValueError):
        return None
    if not data.get("gate_enforced"):
        return None
    value = data.get("array_requests_per_s")
    return float(value) if isinstance(value, (int, float)) else None


def test_bench_observability_overhead(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)

    # Off: the default no-op hooks — must match the committed engine bench.
    def run_off():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(
            tenants, duration_s=DURATION_S, mode="batched", engine="array"
        )

    # On: a live tracer and metrics registry attached to the same run.
    def run_on():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(
            tenants,
            duration_s=DURATION_S,
            mode="batched",
            engine="array",
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        )

    t_off, off_report = _best_of(run_off)
    t_on, on_report = _best_of(run_on)

    assert_reports_equal(on_report, off_report)
    completed = off_report.total_completed
    off_rps = completed / t_off
    on_rps = completed / t_on
    overhead = t_on / t_off
    committed_rps = _committed_engine_rps()

    rows = {
        "scenario": scenario.name,
        "model": MODEL_NAME,
        "num_devices": NUM_DEVICES,
        "num_tenants": NUM_TENANTS,
        "duration_s": DURATION_S,
        "requests_completed": completed,
        "rounds": ROUNDS,
        "off_requests_per_s": off_rps,
        "on_requests_per_s": on_rps,
        "tracing_overhead_ratio": overhead,
        "committed_engine_array_requests_per_s": committed_rps,
        "bit_identical": True,  # assert_reports_equal above would have raised
        "max_off_loss_gate": MAX_OFF_LOSS,
        "max_on_overhead_gate": MAX_ON_OVERHEAD,
    }

    benchmark.pedantic(run_off, rounds=1, iterations=1, warmup_rounds=0)

    if committed_rps is None:
        recorded = record_gate_result(
            BENCH_PATH,
            {},
            enforced=False,
            skip_info={
                **rows,
                "reason": "no enforced committed BENCH_engine.json baseline",
            },
        )
        print(f"\nBENCH_obs (gate skipped): {json.dumps(recorded, indent=2)}")
        return

    rows["speedup_off_vs_committed_engine"] = off_rps / committed_rps
    rows["speedup_on_vs_off"] = on_rps / off_rps
    recorded = record_gate_result(BENCH_PATH, rows)
    print(f"\nBENCH_obs: {json.dumps(recorded, indent=2)}")

    assert off_rps >= committed_rps * (1.0 - MAX_OFF_LOSS), (
        f"observability hooks slowed the tracing-OFF path: {off_rps:.0f} req/s "
        f"vs committed {committed_rps:.0f} req/s "
        f"(> {MAX_OFF_LOSS:.0%} loss; {completed} requests, "
        f"off {t_off * 1000:.0f} ms)"
    )
    assert overhead <= 1.0 + MAX_ON_OVERHEAD, (
        f"tracing-ON overhead too high: {overhead:.2f}x the off run "
        f"(gate {1.0 + MAX_ON_OVERHEAD:.2f}x; on {t_on * 1000:.0f} ms, "
        f"off {t_off * 1000:.0f} ms)"
    )
