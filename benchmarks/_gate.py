"""Shared bench-gate bookkeeping for the ``BENCH_*.json`` artifact trail.

Every CI speedup gate (bench-planner, bench-osds, bench-shard, bench-serve)
records its measurements in a ``BENCH_*.json`` file that CI prints and
uploads.  Some gates cannot always be enforced (the shard gate needs more
cores than workers), and a skipped run must never overwrite enforced
numbers: the file keeps the last *enforced* result at top level and records
the skip — machine facts, reason, unenforced measurements — under
``skipped_run``, so the artifact trail cannot silently degrade into ungated
measurements.  CI distinguishes the two via ``last_run_enforced`` (did
*this* run enforce the gate?) versus ``gate_enforced`` (do the top-level
numbers come from an enforced run, possibly an earlier one?) and only
uploads artifacts whose gate actually ran.

This helper centralises that bookkeeping (it grew up inside
``test_bench_shard.py``); benches call :func:`record_gate_result` with their
rows and whether this run enforced the gate.

The module is also a tiny CLI for CI's guard step::

    python benchmarks/_gate.py check BENCH_serve.json   # prints true|false

prints the file's ``last_run_enforced`` flag (``false`` for a missing or
unreadable file), which the bench matrix job feeds into its conditional
artifact upload and the warn-only mode of the trend check.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Optional


def record_gate_result(
    path: Path,
    rows: Dict,
    enforced: bool = True,
    skip_info: Optional[Dict] = None,
) -> Dict:
    """Write a bench result to ``path`` with skipped-gate retention.

    Parameters
    ----------
    path:
        The ``BENCH_*.json`` file.
    rows:
        This run's measurements (without the ``gate_enforced`` /
        ``last_run_enforced`` bookkeeping keys — they are added here).
    enforced:
        Whether this run enforced its speedup assertion.  Enforced runs
        replace the file wholesale; skipped runs only annotate it.
    skip_info:
        Machine facts and measurements of a skipped run (reason, CPU count,
        unenforced speedup...), recorded under ``skipped_run``.

    Returns the rows as written (for printing).
    """
    if enforced:
        out = {**rows, "gate_enforced": True, "last_run_enforced": True}
        path.write_text(json.dumps(out, indent=2) + "\n")
        return out
    skip = dict(skip_info or {})
    previous = None
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except ValueError:
            previous = None
    if previous is not None and previous.get("gate_enforced"):
        # Keep the last enforced result; only annotate the skip.
        previous["skipped_run"] = skip
        previous["last_run_enforced"] = False
        path.write_text(json.dumps(previous, indent=2) + "\n")
        return previous
    # No enforced numbers to keep: a file whose top level says
    # gate_enforced: false carries none at all and is not uploaded by CI.
    out = {"gate_enforced": False, "last_run_enforced": False, "skipped_run": skip}
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out


def last_run_enforced(path: Path) -> bool:
    """Whether ``path``'s most recent bench run enforced its gate.

    Missing, unreadable or malformed files report ``False`` — CI treats
    that exactly like a skipped gate (no artifact upload, warn-only trend).
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return False
    return bool(isinstance(data, dict) and data.get("last_run_enforced"))


def main(argv) -> int:
    if len(argv) != 2 or argv[0] != "check":
        print("usage: python benchmarks/_gate.py check BENCH_x.json", file=sys.stderr)
        return 2
    print("true" if last_run_enforced(Path(argv[1])) else "false")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))


__all__ = ["record_gate_result", "last_run_enforced"]
