"""Shard-scaling benchmark: plans/sec, 1 vs 4 worker processes.

The batch engine made plan evaluation one array program per (model,
partition) group; this gate guards the second scaling axis — sharding a
batch of such groups across worker processes.  The workload is the one the
tentpole targets: a generated 32-device fleet (``gen:n=32,seed=17``) and
256-plan batches with *varied* partition boundaries, the shape LC-PSS
re-voting and OSDS candidate scoring actually produce at Table-III scale.

The gate asserts the sharded path reaches at least ``MIN_SPEEDUP`` (2x) the
single-process batch throughput and that the merged results are
bit-identical; numbers land in ``BENCH_shard.json`` for the CI artifact
trail.  On machines with fewer cores than workers the speedup assertion is
skipped — multiprocess scaling cannot be demonstrated on a single core —
with the skipped-gate retention rules of :mod:`_gate` (a skipped run never
overwrites enforced numbers).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _gate import record_gate_result

from repro.experiments.scenarios import generate_scenario
from repro.experiments.workloads import random_varied_plans
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.shard import ShardedPlanEvaluator

NUM_DEVICES = 32
BATCH_SIZE = 256
WORKERS = 4
ROUNDS = 3
MIN_SPEEDUP = 2.0
MODEL_NAME = "vgg16"
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"


def _make_plans(model, devices, count, seed):
    """Plans with varied partition boundaries (many vectorisation groups)."""
    return random_varied_plans(
        model, devices, count, seed=seed, min_cut_layer=2, drop_rate=0.2
    )


def test_bench_shard_scaling(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    model = model_zoo.get(MODEL_NAME)
    sharded = ShardedPlanEvaluator(scenario, num_workers=WORKERS)
    devices, network = sharded.devices, sharded.network
    single = BatchPlanEvaluator(devices, network)

    # Pool start-up and per-worker initialisation are one-time costs a
    # persistent deployment pays once; warm them outside the timed rounds
    # (the warm-up batch is disjoint from every timed batch).
    workers_up = sharded.warm_up()
    warmup_plans = _make_plans(model, devices, 2 * WORKERS, seed=999)
    sharded.evaluate_plans(warmup_plans)
    single.evaluate_plans(warmup_plans)

    # Distinct plan sets per round: the plan LRU cannot carry results across
    # rounds, in either path.  Both paths see the same sets in the same
    # order, so compute-memo warming is symmetric.
    rounds = [_make_plans(model, devices, BATCH_SIZE, seed=100 + r) for r in range(ROUNDS)]
    t_single, t_sharded = [], []
    bit_identical = True
    for plans in rounds:
        start = time.perf_counter()
        ref = single.evaluate_plans(plans)
        t_single.append(time.perf_counter() - start)
        start = time.perf_counter()
        out = sharded.evaluate_plans(plans)
        t_sharded.append(time.perf_counter() - start)
        bit_identical = bit_identical and all(
            a.end_to_end_ms == b.end_to_end_ms for a, b in zip(ref, out)
        )

    best_single, best_sharded = min(t_single), min(t_sharded)
    speedup = best_single / best_sharded
    cpus = os.cpu_count() or 1
    enforced = cpus >= WORKERS
    rows = record_gate_result(
        BENCH_PATH,
        {
            "scenario": scenario.name,
            "model": MODEL_NAME,
            "num_devices": NUM_DEVICES,
            "batch_size": BATCH_SIZE,
            "workers": WORKERS,
            "workers_started": workers_up,
            "cpu_count": cpus,
            "rounds": ROUNDS,
            "single_plans_per_s": BATCH_SIZE / best_single,
            "sharded_plans_per_s": BATCH_SIZE / best_sharded,
            "speedup_sharded_over_single": speedup,
            "bit_identical": bit_identical,
            "min_speedup_gate": MIN_SPEEDUP,
        },
        enforced=enforced,
        skip_info={
            "cpu_count": cpus,
            "workers": WORKERS,
            "reason": f"{cpus} CPU(s) < {WORKERS} workers; multiprocess "
            "scaling cannot be demonstrated on this machine",
            "measured_speedup_sharded_over_single": speedup,
            "bit_identical": bit_identical,
        },
    )
    print(f"\nBENCH_shard: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(
        lambda: sharded.evaluate_plans(rounds[0]), rounds=1, iterations=1, warmup_rounds=0
    )
    sharded.close()

    assert bit_identical, "sharded results diverged from the single-process batch path"
    if enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"shard scaling regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"(single {best_single * 1000:.1f} ms, sharded {best_sharded * 1000:.1f} ms "
            f"per {BATCH_SIZE}-plan batch on {NUM_DEVICES} devices)"
        )
    else:
        print(
            f"NOTE: {cpus} CPU(s) < {WORKERS} workers - speedup gate not enforced "
            f"on this machine (measured {speedup:.2f}x)"
        )
