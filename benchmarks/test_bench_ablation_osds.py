"""Ablation: DDPG-guided OSDS vs pure random split search vs heuristics.

DESIGN.md calls out the question "does the DRL agent actually help over the
best-ever-recorded random exploration?".  This ablation runs, on the same
partition scheme and with the same episode budget:

* OSDS with DDPG updates (the paper's Algorithm 2),
* OSDS with updates disabled (pure guided-random search with best-recording),
* the heuristic corner plans alone (offload / capability-proportional).
"""

from __future__ import annotations


from benchmarks.conftest import EPISODES, run_once
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.mdp import SplitMDP
from repro.core.osds import OSDS, OSDSConfig
from repro.experiments.scenarios import ScenarioCatalog
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan


def test_ablation_osds_vs_random_search(benchmark):
    def run():
        model = model_zoo.vgg16()
        scenario = ScenarioCatalog.table1_groups(300.0)["DB"]
        devices, network = scenario.build(seed=0)
        evaluator = PlanEvaluator(devices, network)
        planner = DistrEdge(DistrEdgeConfig(num_random_splits=20, seed=0))
        boundaries = planner.partition(model, devices).boundaries

        out = {}
        # Heuristic corners only.
        offload = min(
            evaluator.evaluate(DistributionPlan.single_device(model, devices, i)).end_to_end_ms
            for i in range(len(devices))
        )
        out["offload_corner_ms"] = offload

        for label, train in (("osds_ddpg", True), ("random_search", False)):
            env = SplitMDP(model, boundaries, devices, PlanEvaluator(devices, network))
            osds = OSDS(env, OSDSConfig(max_episodes=EPISODES, seed=0))
            result = osds.run(train=train)
            out[f"{label}_ms"] = result.best_latency_ms
        return out

    data = run_once(benchmark, run)
    print("\n=== Ablation: OSDS search strategy (DB, 300 Mbps, VGG-16) ===")
    for key, value in data.items():
        print(f"  {key:18s} {value:7.1f} ms  ({1000.0 / value:5.2f} IPS)")
    # This ablation runs OSDS *without* heuristic seeding, so at the reduced
    # episode budget neither variant is expected to reach the offload corner;
    # the check is that DDPG guidance clearly helps over pure random
    # exploration and that the search lands within a sane factor of the
    # corner solution.
    assert data["osds_ddpg_ms"] <= data["random_search_ms"] * 1.1
    assert data["osds_ddpg_ms"] <= data["offload_corner_ms"] * 1.6
