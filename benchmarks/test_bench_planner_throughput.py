"""Planner-throughput benchmark: plans evaluated per second, single vs batch.

The planner stack's quality is bounded by how many candidate plans the
DDPG/LC-PSS/OSDS search can afford to score, so this benchmark gates the
repository's hottest path: it times a 64-plan batch through the per-plan
:class:`PlanEvaluator` and through :class:`BatchPlanEvaluator`'s vectorised
engine, asserts the batch path is at least 5x faster, and records the
numbers in ``BENCH_planner.json`` so CI can track regressions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import as_rng

BATCH_SIZE = 64
ROUNDS = 5
MIN_SPEEDUP = 5.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_planner.json"


def _make_plans():
    model = model_zoo.vgg16()
    devices = make_cluster([("xavier", 300), ("tx2", 200), ("nano", 100), ("pi3", 50)])
    network = NetworkModel.constant_from_devices(devices)
    boundaries = [0, 4, 9, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    rng = as_rng(17)
    plans = []
    for _ in range(BATCH_SIZE):
        decisions = []
        for volume in volumes:
            fractions = rng.random(len(devices))
            if rng.random() < 0.3:
                fractions[int(rng.integers(len(devices)))] = 0.0
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        plans.append(DistributionPlan(model, devices, boundaries, decisions))
    return devices, network, plans


def _best_of(fn, rounds=ROUNDS):
    elapsed = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def test_bench_planner_throughput(benchmark):
    devices, network, plans = _make_plans()

    # Per-plan path: the pre-batching behaviour (memoization disabled so the
    # comparison measures the evaluator itself, not cache warm-up effects).
    def run_single():
        evaluator = PlanEvaluator(devices, network, memoize_compute=False)
        for plan in plans:
            evaluator.evaluate(plan)

    # Batch path, cold: fresh evaluator per round so the LRU cannot help.
    def run_batch_cold():
        BatchPlanEvaluator(devices, network).evaluate_plans(plans)

    t_single = _best_of(run_single)
    t_batch = _best_of(run_batch_cold)

    # Cached path: steady-state re-evaluation (LC-PSS re-voting, replay
    # buffer re-scoring) is pure cache traffic.
    warm = BatchPlanEvaluator(devices, network)
    warm.evaluate_plans(plans)
    t_cached = _best_of(lambda: warm.evaluate_plans(plans))

    speedup = t_single / t_batch
    rows = record_gate_result(
        BENCH_PATH,
        {
            "batch_size": BATCH_SIZE,
            "model": "vgg16",
            "cluster": [f"{d.type_name}@{d.bandwidth_mbps:g}" for d in devices],
            "single_plans_per_s": BATCH_SIZE / t_single,
            "batch_plans_per_s": BATCH_SIZE / t_batch,
            "cached_plans_per_s": BATCH_SIZE / t_cached,
            "speedup_batch_over_single": speedup,
            "speedup_cached_over_single": t_single / t_cached,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    print(f"\nBENCH_planner: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(run_batch_cold, rounds=1, iterations=1, warmup_rounds=0)
    assert speedup >= MIN_SPEEDUP, (
        f"batch evaluation speedup regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(single {t_single * 1000:.2f} ms, batch {t_batch * 1000:.2f} ms per "
        f"{BATCH_SIZE}-plan batch)"
    )
