"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (a table
or a figure) and prints the resulting rows so they can be copied into
EXPERIMENTS.md.  Benchmarks run **once** (``benchmark.pedantic`` with a single
round) because each one is itself a full experiment, not a micro-benchmark.

Fidelity knobs are read from environment variables so the same files can be
run in a fast configuration (default) or closer to paper scale:

``REPRO_BENCH_EPISODES``       OSDS episodes for 4-device scenarios (default 80)
``REPRO_BENCH_EPISODES_LARGE`` OSDS episodes for 16-device scenarios (default 40)
``REPRO_BENCH_RANDOM_SPLITS``  |Rr_s| for LC-PSS (default 20)
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentHarness, HarnessConfig

EPISODES = int(os.environ.get("REPRO_BENCH_EPISODES", "80"))
EPISODES_LARGE = int(os.environ.get("REPRO_BENCH_EPISODES_LARGE", "40"))
RANDOM_SPLITS = int(os.environ.get("REPRO_BENCH_RANDOM_SPLITS", "20"))


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker.

    Tier-1 (`pytest` from the repository root) collects only ``tests/`` via
    the ``testpaths`` setting in pyproject.toml; benchmarks run opt-in with
    ``pytest benchmarks`` (optionally ``-m bench`` elsewhere).
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def fast_harness():
    """Harness for 4-device scenarios (shared so figure cells are cached)."""
    return ExperimentHarness(
        HarnessConfig(
            osds_episodes=EPISODES,
            num_random_splits=RANDOM_SPLITS,
            seed=0,
        )
    )


@pytest.fixture(scope="session")
def large_scale_harness():
    """Harness for the 16-provider scenarios of Table III / Fig. 9."""
    return ExperimentHarness(
        HarnessConfig(
            osds_episodes=EPISODES_LARGE,
            num_random_splits=RANDOM_SPLITS,
            seed=0,
        )
    )


@pytest.fixture(scope="session")
def model_sweep_harness():
    """Harness for the seven-extra-model sweeps of Figs. 10-11."""
    return ExperimentHarness(
        HarnessConfig(
            osds_episodes=max(EPISODES // 2, 30),
            num_random_splits=RANDOM_SPLITS,
            seed=0,
        )
    )
