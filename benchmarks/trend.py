"""Bench-trend regression check: fresh ``BENCH_*.json`` vs committed baseline.

Every bench gate asserts an absolute speedup floor, which catches only
catastrophic regressions — a batched path that slid from 8x to 5.5x still
clears a 5x gate.  This check closes that blind spot: CI snapshots the
*committed* ``BENCH_*.json`` before running the gate, then compares every
shared ``speedup*`` key of the fresh result against it and fails when any
dropped by more than ``--max-regression`` (default 25%).

Semantics:

* Only keys starting with ``speedup`` are compared (machine-dependent
  absolutes like requests/s or wall seconds vary across runners and are
  reported, not gated).
* A fresh file whose ``last_run_enforced`` is false (the gate skipped on
  this runner) downgrades regressions to warnings — an unenforced number
  is not evidence.
* No committed baseline (new bench, first run) passes trivially.
* Improvements are never flagged; the committed file is a floor, not a pin.

Exit status: 0 OK (or warn-only), 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_MAX_REGRESSION = 0.25


def _load(path: Path) -> Optional[Dict]:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def speedup_keys(rows: Dict) -> Dict[str, float]:
    """The gated subset of a bench result: numeric ``speedup*`` keys."""
    out = {}
    for key, value in rows.items():
        if key.startswith("speedup") and isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare(
    fresh: Dict,
    baseline: Dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Tuple[List[str], List[str]]:
    """Diff shared speedup keys; returns ``(regressions, notes)``.

    A key regresses when the fresh value is below
    ``baseline * (1 - max_regression)``.  Keys present on only one side are
    noted, not failed (benches gain and retire metrics across PRs).
    """
    regressions: List[str] = []
    notes: List[str] = []
    fresh_keys = speedup_keys(fresh)
    base_keys = speedup_keys(baseline)
    for key in sorted(set(fresh_keys) | set(base_keys)):
        if key not in fresh_keys:
            notes.append(f"{key}: only in baseline ({base_keys[key]:.2f}) — retired?")
            continue
        if key not in base_keys:
            notes.append(f"{key}: new metric ({fresh_keys[key]:.2f}), no baseline")
            continue
        fresh_v, base_v = fresh_keys[key], base_keys[key]
        floor = base_v * (1.0 - max_regression)
        if fresh_v < floor:
            drop = (base_v - fresh_v) / base_v if base_v else 0.0
            regressions.append(
                f"{key}: live {fresh_v:.2f} vs committed {base_v:.2f} — "
                f"{drop:.1%} drop exceeds the {max_regression:.0%} budget "
                f"(floor {floor:.2f})"
            )
        else:
            notes.append(f"{key}: {fresh_v:.2f} vs committed {base_v:.2f} OK")
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh BENCH_*.json against the committed baseline"
    )
    parser.add_argument("fresh", help="the BENCH_*.json the gate just wrote")
    parser.add_argument(
        "--baseline",
        required=True,
        help="snapshot of the committed BENCH_*.json (taken before the gate ran)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional drop per speedup key (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        print(f"--max-regression must be in [0, 1), got {args.max_regression}",
              file=sys.stderr)
        return 2

    fresh = _load(Path(args.fresh))
    if fresh is None:
        print(f"trend: cannot read fresh result {args.fresh}", file=sys.stderr)
        return 2
    baseline = _load(Path(args.baseline))
    if baseline is None:
        print(f"trend: no committed baseline for {args.fresh} — first run, OK")
        return 0

    regressions, notes = compare(fresh, baseline, args.max_regression)
    for note in notes:
        print(f"trend: {note}")
    if not regressions:
        print(f"trend: {args.fresh} within {args.max_regression:.0%} of committed speedups")
        return 0
    enforced = bool(fresh.get("last_run_enforced"))
    for regression in regressions:
        prefix = "trend REGRESSION" if enforced else "trend warning (gate skipped)"
        print(f"{prefix} in {args.fresh}: {regression}", file=sys.stderr)
    if not enforced:
        # The gate did not run on this machine, so the fresh numbers carry
        # no enforcement weight; surface the drop but do not fail CI on it.
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["compare", "speedup_keys", "DEFAULT_MAX_REGRESSION"]
