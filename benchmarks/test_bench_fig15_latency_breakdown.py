"""Fig. 15: max transmission vs max compute latency per method (DB, 50 Mbps).

Expected shape (paper): layer-by-layer methods (CoEdge/MoDNN/MeDNN) have the
largest transmission component; equal-split methods (DeepThings/DeeperThings)
have the largest compute component (the slow Nanos get half the rows);
DistrEdge keeps both in check.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig15_latency_breakdown(benchmark, fast_harness):
    data = run_once(benchmark, lambda: figures.figure15(fast_harness))
    print("\n=== Fig. 15: latency breakdown (DB, 50 Mbps, VGG-16) ===")
    for method, row in data.items():
        print(
            f"  {method:13s} max_trans={row['max_transmission_ms']:7.1f} ms  "
            f"max_comp={row['max_compute_ms']:7.1f} ms  e2e={row['end_to_end_ms']:7.1f} ms  "
            f"({row['ips']:.2f} IPS)"
        )

    # Layer-by-layer methods transmit more than fused-volume methods.
    assert data["coedge"]["max_transmission_ms"] > data["distredge"]["max_transmission_ms"]
    assert data["modnn"]["max_transmission_ms"] > data["aofl"]["max_transmission_ms"]
    # Equal-split methods leave the slowest device with more compute than
    # DistrEdge does.
    assert data["deeperthings"]["max_compute_ms"] > data["distredge"]["max_compute_ms"]
    # DistrEdge has the lowest (or tied-lowest) end-to-end latency.
    best = min(row["end_to_end_ms"] for row in data.values())
    assert data["distredge"]["end_to_end_ms"] <= best * 1.1
