"""Serving-loop benchmark: requests/sec, epoch-batched vs naive reference.

The serving subsystem's gate: a 4-tenant open-loop workload on a generated
32-device fleet (the tentpole shape — several methods' plans sharing one
Table-III-scale cluster under Poisson traffic) is driven once through the
naive per-request reference loop (one scalar
:meth:`~repro.runtime.evaluator.PlanEvaluator.evaluate` call per request)
and once through the epoch-batched loop
(:class:`~repro.serving.simulator.ServingSimulator` over
:class:`~repro.runtime.batch.BatchPlanEvaluator` — signature-grouped
``evaluate_plans`` epochs with the plan LRU carrying steady-state traffic).

The gate asserts the batched event loop serves the workload at least
``MIN_SPEEDUP`` (5x) faster in wall time, and that the two loops' reports
are bit-identical (the parity contract, re-checked here on the gated
workload itself).  Like the OSDS gate — and unlike the shard gate — nothing
here needs multiple cores, so the gate is enforced everywhere.  Numbers
land in ``BENCH_serve.json`` via the shared :mod:`_gate` bookkeeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.serving import SLO, PoissonArrivals, ServingSimulator, TenantSpec
from repro.serving.simulator import assert_reports_equal

NUM_DEVICES = 32
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 5.0
DURATION_S = 10.0
DEADLINE_MS = 500.0
ROUNDS = 3
MIN_SPEEDUP = 5.0
MODEL_NAME = "vgg16"
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _make_tenants(model, devices, network):
    tenants = []
    for i, method in enumerate(TENANT_METHODS):
        plan = BASELINE_REGISTRY[method]().plan(model, devices, network)
        tenants.append(
            TenantSpec(
                name=method,
                plan=plan,
                traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=100 + i),
                slo=SLO(deadline_ms=DEADLINE_MS),
            )
        )
    return tenants


def _best_of(fn, rounds=ROUNDS):
    best_t, report = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        report = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, report


def test_bench_serve_event_loop(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)

    # Naive per-request loop: fresh scalar evaluator each round (the
    # pre-serving behaviour — per-request Python scheduling, no plan LRU).
    def run_reference():
        simulator = ServingSimulator(PlanEvaluator(devices, network))
        return simulator.run(tenants, duration_s=DURATION_S, mode="reference")

    # Epoch-batched loop: fresh batch evaluator each round, so the measured
    # speedup includes the cold first epoch (no cross-round cache carry).
    def run_batched():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(tenants, duration_s=DURATION_S, mode="batched")

    t_reference, reference_report = _best_of(run_reference)
    t_batched, batched_report = _best_of(run_batched)

    assert_reports_equal(batched_report, reference_report)
    speedup = t_reference / t_batched
    completed = batched_report.total_completed

    rows = record_gate_result(
        BENCH_PATH,
        {
            "scenario": scenario.name,
            "model": MODEL_NAME,
            "num_devices": NUM_DEVICES,
            "tenants": list(TENANT_METHODS),
            "arrival_rate_rps_per_tenant": RATE_RPS,
            "duration_s": DURATION_S,
            "requests_completed": completed,
            "epochs": batched_report.epochs,
            "rounds": ROUNDS,
            "reference_requests_per_s": completed / t_reference,
            "batched_requests_per_s": completed / t_batched,
            "speedup_batched_over_reference": speedup,
            "bit_identical": True,  # assert_reports_equal above would have raised
            "deadline_miss_rate": batched_report.deadline_miss_rate,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    print(f"\nBENCH_serve: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(run_batched, rounds=1, iterations=1, warmup_rounds=0)

    assert speedup >= MIN_SPEEDUP, (
        f"serving event loop regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(reference {t_reference * 1000:.0f} ms, batched {t_batched * 1000:.0f} ms "
        f"for {completed} requests over {len(TENANT_METHODS)} tenants on "
        f"{NUM_DEVICES} devices)"
    )
