"""Tests for the NumPy operator implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor_ops import apply_activation, conv2d, dense, im2col, pad_hw, pool2d


def naive_conv2d(x, w, bias, stride, pad):
    """Straightforward loop reference used to validate the im2col path."""
    x_p = np.pad(x, ((pad, pad), (pad, pad), (0, 0)))
    k = w.shape[0]
    out_h = (x_p.shape[0] - k) // stride + 1
    out_w = (x_p.shape[1] - k) // stride + 1
    out = np.zeros((out_h, out_w, w.shape[3]), dtype=np.float32)
    for i in range(out_h):
        for j in range(out_w):
            patch = x_p[i * stride : i * stride + k, j * stride : j * stride + k, :]
            for c in range(w.shape[3]):
                out[i, j, c] = np.sum(patch * w[:, :, :, c])
    if bias is not None:
        out += bias
    return out


class TestActivations:
    def test_linear_identity(self):
        x = np.array([-1.0, 2.0])
        assert np.array_equal(apply_activation(x, "linear"), x)

    def test_relu(self):
        assert np.array_equal(apply_activation(np.array([-1.0, 2.0]), "relu"), [0.0, 2.0])

    def test_leaky_relu(self):
        out = apply_activation(np.array([-10.0, 5.0]), "leaky_relu")
        assert out[0] == pytest.approx(-1.0)
        assert out[1] == pytest.approx(5.0)

    def test_sigmoid_range(self):
        out = apply_activation(np.linspace(-5, 5, 11), "sigmoid")
        assert np.all((out > 0) & (out < 1))

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            apply_activation(np.zeros(2), "gelu")


class TestPadHw:
    def test_no_padding_returns_same_object(self):
        x = np.zeros((2, 2, 1), dtype=np.float32)
        assert pad_hw(x, 0, 0, 0, 0) is x

    def test_asymmetric_padding_shape(self):
        x = np.ones((4, 5, 2), dtype=np.float32)
        out = pad_hw(x, 1, 2, 3, 0)
        assert out.shape == (7, 8, 2)

    def test_pad_value(self):
        x = np.ones((2, 2, 1), dtype=np.float32)
        out = pad_hw(x, 1, 0, 0, 0, value=-np.inf)
        assert np.isneginf(out[0]).all()

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            pad_hw(np.zeros((2, 2, 1)), -1, 0, 0, 0)


class TestIm2col:
    def test_patch_count(self):
        x = np.arange(5 * 5 * 2, dtype=np.float32).reshape(5, 5, 2)
        patches, oh, ow = im2col(x, 3, 1)
        assert (oh, ow) == (3, 3)
        assert patches.shape == (9, 3 * 3 * 2)

    def test_stride(self):
        x = np.zeros((6, 6, 1), dtype=np.float32)
        _, oh, ow = im2col(x, 2, 2)
        assert (oh, ow) == (3, 3)

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((2, 2, 1)), 3, 1)


class TestConv2d:
    @given(
        h=st.integers(5, 12),
        w=st.integers(5, 12),
        cin=st.integers(1, 3),
        cout=st.integers(1, 4),
        kernel=st.sampled_from([1, 3]),
        stride=st.sampled_from([1, 2]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20)
    def test_matches_naive_reference(self, h, w, cin, cout, kernel, stride, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(h, w, cin)).astype(np.float32)
        wgt = rng.normal(size=(kernel, kernel, cin, cout)).astype(np.float32)
        bias = rng.normal(size=(cout,)).astype(np.float32)
        pad = (kernel - 1) // 2
        fast = conv2d(x, wgt, bias, stride, pad, pad, pad, pad, "linear")
        slow = naive_conv2d(x, wgt, bias, stride, pad)
        assert fast.shape == slow.shape
        np.testing.assert_allclose(fast, slow, rtol=1e-4, atol=1e-4)

    def test_relu_applied(self):
        x = -np.ones((4, 4, 1), dtype=np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        out = conv2d(x, w, None, 1, 0, 0, 0, 0, "relu")
        assert np.all(out == 0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((4, 4, 2)), np.zeros((3, 3, 3, 1)), None, 1, 1, 1, 1, 1)

    def test_non_square_kernel_rejected(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((4, 4, 1)), np.zeros((3, 2, 1, 1)), None, 1, 0, 0, 0, 0)


class TestPool2d:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(4, 4, 1)
        out = pool2d(x, 2, 2, 0, 0, 0, 0, "max")
        assert out.shape == (2, 2, 1)
        np.testing.assert_array_equal(out[:, :, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.ones((4, 4, 2), dtype=np.float32)
        out = pool2d(x, 2, 2, 0, 0, 0, 0, "avg")
        assert np.allclose(out, 1.0)

    def test_max_pool_with_padding_ignores_pad(self):
        x = np.full((2, 2, 1), -5.0, dtype=np.float32)
        out = pool2d(x, 3, 1, 1, 0, 1, 0, "max")
        # Padded cells are -inf for max pooling, so the max stays -5.
        assert np.all(out == -5.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            pool2d(np.zeros((4, 4, 1)), 2, 2, 0, 0, 0, 0, "sum")


class TestDense:
    def test_matches_matmul(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 3, 2)).astype(np.float32)
        w = rng.normal(size=(18, 5)).astype(np.float32)
        b = rng.normal(size=(5,)).astype(np.float32)
        out = dense(x, w, b)
        np.testing.assert_allclose(out, x.reshape(-1) @ w + b, rtol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dense(np.zeros((2, 2, 1)), np.zeros((5, 3)), None)
