"""Numerical correctness of split execution — the core invariant.

DistrEdge distributes unmodified models, so any vertical split of any
layer-volume, executed part-by-part and merged, must reproduce whole-model
execution exactly.  These tests check that invariant for hand-picked and
property-generated split decisions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.execution import ModelExecutor, SplitExecutor
from repro.nn.splitting import SplitDecision


class TestModelExecutor:
    def test_deterministic_weights(self, tiny_model):
        a = ModelExecutor(tiny_model, seed=1)
        b = ModelExecutor(tiny_model, seed=1)
        x = a.random_input()
        np.testing.assert_array_equal(a.run(x), b.run(x))

    def test_different_seeds_differ(self, tiny_model):
        a = ModelExecutor(tiny_model, seed=1)
        b = ModelExecutor(tiny_model, seed=2)
        x = a.random_input(seed=0)
        assert not np.allclose(a.run(x), b.run(x))

    def test_output_shape_matches_spec(self, tiny_model, tiny_executor):
        x = tiny_executor.random_input()
        out = tiny_executor.run(x)
        assert out.shape == (tiny_model.layers[-1].out_features,)

    def test_layer_shapes_along_the_way(self, tiny_model, tiny_executor):
        x = tiny_executor.random_input()
        out = x
        for layer in tiny_model.spatial_layers:
            out = tiny_executor.forward_layer(layer, out)
            assert out.shape == layer.output_shape

    def test_upto_partial_execution(self, tiny_model, tiny_executor):
        x = tiny_executor.random_input()
        partial = tiny_executor.run(x, upto=2)
        assert partial.shape == tiny_model.layers[1].output_shape

    def test_weights_for_unknown_layer(self, tiny_executor):
        with pytest.raises(KeyError):
            tiny_executor.weights_for(
                type(tiny_executor.model.layers[0])(
                    name="ghost", in_h=8, in_w=8, in_c=3, out_channels=4, padding_size=1
                )
            )

    def test_pool_layer_has_no_weights(self, tiny_model, tiny_executor):
        pool = [l for l in tiny_model.layers if type(l).__name__ == "PoolSpec"][0]
        with pytest.raises(KeyError):
            tiny_executor.weights_for(pool)


class TestSplitMatchesWhole:
    def test_two_way_split_exact(self, tiny_model, tiny_executor):
        splitter = SplitExecutor(tiny_executor)
        volume = tiny_model.volume(0, tiny_model.num_spatial_layers)
        x = tiny_executor.random_input()
        whole = tiny_executor.run_volume(volume, x)
        decision = SplitDecision.from_fractions([0.6, 0.4], volume.output_height)
        merged, parts = splitter.run_split(volume, decision, x)
        np.testing.assert_allclose(whole, merged, rtol=1e-4, atol=1e-5)
        assert len(parts) == 2

    def test_four_way_split_exact(self, small_model, small_executor):
        splitter = SplitExecutor(small_executor)
        volume = small_model.volume(0, 6)
        x = small_executor.random_input()
        whole = small_executor.run_volume(volume, x)
        decision = SplitDecision.from_fractions([0.4, 0.3, 0.2, 0.1], volume.output_height)
        merged, _ = splitter.run_split(volume, decision, x)
        np.testing.assert_allclose(whole, merged, rtol=1e-4, atol=1e-5)

    def test_split_with_empty_device(self, small_model, small_executor):
        splitter = SplitExecutor(small_executor)
        volume = small_model.volume(0, 4)
        x = small_executor.random_input()
        whole = small_executor.run_volume(volume, x)
        decision = SplitDecision.from_fractions([0.5, 0.0, 0.5], volume.output_height)
        merged, parts = splitter.run_split(volume, decision, x)
        np.testing.assert_allclose(whole, merged, rtol=1e-4, atol=1e-5)
        assert parts[1].is_empty

    def test_chained_volumes_match_whole_backbone(self, small_model, small_executor):
        splitter = SplitExecutor(small_executor)
        boundaries = [0, 3, 6, small_model.num_spatial_layers]
        volumes = small_model.partition(boundaries)
        decisions = [
            SplitDecision.from_fractions([0.5, 0.3, 0.2], v.output_height) for v in volumes
        ]
        x = small_executor.random_input()
        whole = small_executor.run(x, upto=small_model.num_spatial_layers)
        chained = splitter.run_plan_volumes(volumes, decisions, x)
        np.testing.assert_allclose(whole, chained, rtol=1e-4, atol=1e-5)

    def test_run_part_rejects_wrong_input_shape(self, tiny_model, tiny_executor):
        splitter = SplitExecutor(tiny_executor)
        volume = tiny_model.volume(0, 2)
        decision = SplitDecision.equal(2, volume.output_height)
        from repro.nn.splitting import split_volume

        part = split_volume(volume, decision)[0]
        with pytest.raises(ValueError):
            splitter.run_part(volume, part, np.zeros((4, 4, 3), dtype=np.float32))

    def test_mismatched_decision_count_rejected(self, small_model, small_executor):
        splitter = SplitExecutor(small_executor)
        volumes = small_model.partition([0, 4, small_model.num_spatial_layers])
        with pytest.raises(ValueError):
            splitter.run_plan_volumes(volumes, [], small_executor.random_input())

    @given(
        frac=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=5),
        start=st.integers(0, 3),
        length=st.integers(1, 4),
    )
    @settings(max_examples=15)
    def test_property_any_split_is_lossless(self, frac, start, length, small_model, small_executor):
        if sum(frac) == 0:
            frac = [1.0] * len(frac)
        end = min(start + length, small_model.num_spatial_layers)
        if end <= start:
            return
        volume = small_model.volume(start, end)
        x_full = small_executor.random_input()
        # Build the true input of this volume by running the prefix.
        x = small_executor.run(x_full, upto=start) if start > 0 else x_full
        whole = small_executor.run_volume(volume, x)
        decision = SplitDecision.from_fractions(frac, volume.output_height)
        merged, _ = SplitExecutor(small_executor).run_split(volume, decision, x)
        np.testing.assert_allclose(whole, merged, rtol=1e-4, atol=1e-5)
