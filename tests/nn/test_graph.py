"""Tests for ModelSpec / ModelBuilder / LayerVolume."""

from __future__ import annotations

import pytest

from repro.nn.graph import LayerVolume, ModelBuilder, ModelSpec
from repro.nn.layers import ConvSpec, DenseSpec


def build_small():
    return (
        ModelBuilder("m", input_shape=(16, 16, 3))
        .conv(8)
        .conv(8)
        .pool()
        .conv(16)
        .pool()
        .dense(10)
        .build()
    )


class TestModelBuilder:
    def test_builds_valid_model(self):
        model = build_small()
        assert model.num_spatial_layers == 5
        assert len(model.head_layers) == 1

    def test_auto_names_unique(self):
        model = build_small()
        names = [l.name for l in model.layers]
        assert len(names) == len(set(names))

    def test_same_padding_string(self):
        model = ModelBuilder("m", (16, 16, 3)).conv(4, kernel=5, padding="same").build()
        assert model.layers[0].out_h == 16

    def test_valid_padding_string(self):
        model = ModelBuilder("m", (16, 16, 3)).conv(4, kernel=5, padding="valid").build()
        assert model.layers[0].out_h == 12

    def test_unknown_padding_rejected(self):
        with pytest.raises(ValueError):
            ModelBuilder("m", (16, 16, 3)).conv(4, padding="full")

    def test_shapes_chain(self):
        model = build_small()
        for prev, cur in zip(model.spatial_layers, model.spatial_layers[1:]):
            assert cur.input_shape == prev.output_shape


class TestModelSpecValidation:
    def test_input_shape_mismatch_rejected(self):
        layer = ConvSpec(name="c", in_h=8, in_w=8, in_c=3, out_channels=4, padding_size=1)
        with pytest.raises(ValueError):
            ModelSpec("bad", [layer], input_shape=(16, 16, 3))

    def test_duplicate_names_rejected(self):
        l1 = ConvSpec(name="c", in_h=8, in_w=8, in_c=3, out_channels=3, padding_size=1)
        l2 = ConvSpec(name="c", in_h=8, in_w=8, in_c=3, out_channels=3, padding_size=1)
        with pytest.raises(ValueError):
            ModelSpec("bad", [l1, l2], input_shape=(8, 8, 3))

    def test_shape_chain_mismatch_rejected(self):
        l1 = ConvSpec(name="a", in_h=8, in_w=8, in_c=3, out_channels=4, padding_size=1)
        l2 = ConvSpec(name="b", in_h=8, in_w=8, in_c=8, out_channels=4, padding_size=1)
        with pytest.raises(ValueError):
            ModelSpec("bad", [l1, l2], input_shape=(8, 8, 3))

    def test_spatial_after_dense_rejected(self):
        conv = ConvSpec(name="a", in_h=8, in_w=8, in_c=3, out_channels=4, padding_size=1)
        fc = DenseSpec(name="fc", in_h=8, in_w=8, in_c=4, out_features=16)
        conv2 = ConvSpec(name="b", in_h=4, in_w=4, in_c=1, out_channels=4, padding_size=1)
        with pytest.raises(ValueError):
            ModelSpec("bad", [conv, fc, conv2], input_shape=(8, 8, 3))

    def test_dense_feature_mismatch_rejected(self):
        conv = ConvSpec(name="a", in_h=8, in_w=8, in_c=3, out_channels=4, padding_size=1)
        fc = DenseSpec(name="fc", in_h=4, in_w=4, in_c=4, out_features=16)
        with pytest.raises(ValueError):
            ModelSpec("bad", [conv, fc], input_shape=(8, 8, 3))

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", [], input_shape=(8, 8, 3))


class TestAccounting:
    def test_total_macs_sum(self):
        model = build_small()
        assert model.total_macs == sum(l.macs for l in model.layers)

    def test_backbone_plus_head(self):
        model = build_small()
        assert model.total_macs == model.backbone_macs + model.head_macs

    def test_layer_lists_lengths(self):
        model = build_small()
        assert len(model.layer_macs()) == model.num_spatial_layers
        assert len(model.layer_output_bytes()) == model.num_spatial_layers

    def test_input_bytes(self):
        model = build_small()
        assert model.input_bytes == 16 * 16 * 3 * 2


class TestPartitioning:
    def test_volume_basic(self):
        model = build_small()
        volume = model.volume(0, 3)
        assert len(volume) == 3
        assert volume.first.name == model.spatial_layers[0].name
        assert volume.last.name == model.spatial_layers[2].name

    def test_volume_invalid_range(self):
        model = build_small()
        with pytest.raises(ValueError):
            model.volume(3, 3)
        with pytest.raises(ValueError):
            model.volume(0, 99)

    def test_partition_round_trip(self):
        model = build_small()
        volumes = model.partition([0, 2, 5])
        assert [len(v) for v in volumes] == [2, 3]
        assert volumes[0].input_shape == (16, 16, 3)

    def test_partition_requires_full_coverage(self):
        model = build_small()
        with pytest.raises(ValueError):
            model.partition([0, 2])
        with pytest.raises(ValueError):
            model.partition([1, 5])

    def test_partition_rejects_unsorted(self):
        model = build_small()
        with pytest.raises(ValueError):
            model.partition([0, 3, 2, 5])

    def test_single_volume_partition(self):
        model = build_small()
        assert model.single_volume_partition() == [0, 5]

    def test_layer_by_layer_partition(self):
        model = build_small()
        assert model.layer_by_layer_partition() == [0, 1, 2, 3, 4, 5]

    def test_volume_rejects_dense_layers(self):
        fc = DenseSpec(name="fc", in_h=2, in_w=2, in_c=4, out_features=8)
        with pytest.raises(ValueError):
            LayerVolume(layers=(fc,), start=0, end=1)

    def test_volume_describe_mentions_range(self):
        model = build_small()
        desc = model.volume(0, 2).describe()
        assert "[0:2]" in desc

    def test_volume_macs_sum(self):
        model = build_small()
        volume = model.volume(0, 3)
        assert volume.macs == sum(l.macs for l in model.spatial_layers[:3])


class TestCachedPartition:
    def test_matches_uncached_partition(self):
        from repro.nn.graph import cached_partition

        model = build_small()
        cached = cached_partition(model, [0, 2, 5])
        plain = model.partition([0, 2, 5])
        assert [(v.start, v.end, v.layers) for v in cached] == [
            (v.start, v.end, v.layers) for v in plain
        ]

    def test_shares_volume_objects_across_calls(self):
        from repro.nn.graph import cached_partition

        model = build_small()
        first = cached_partition(model, [0, 2, 5])
        second = cached_partition(model, (0, 2, 5))  # any integer sequence keys alike
        assert all(a is b for a, b in zip(first, second))
        # The list itself is fresh, so callers may mutate it freely.
        assert first is not second
        first.append(None)
        assert len(cached_partition(model, [0, 2, 5])) == 2

    def test_distinct_keys_for_distinct_inputs(self):
        from repro.nn.graph import cached_partition

        model_a = build_small()
        model_b = build_small()
        by_boundary = cached_partition(model_a, [0, 2, 5])
        other_boundary = cached_partition(model_a, [0, 3, 5])
        assert [v.end for v in by_boundary] != [v.end for v in other_boundary]
        # Equal-structure but distinct model objects do not share entries
        # (identity keying: a model's volumes always come from that model).
        other_model = cached_partition(model_b, [0, 2, 5])
        assert all(a is not b for a, b in zip(by_boundary, other_model))

    def test_invalid_boundaries_still_raise(self):
        from repro.nn.graph import cached_partition

        model = build_small()
        with pytest.raises(ValueError):
            cached_partition(model, [0, 5, 2])
