"""Tests for the model zoo (layer-configuration fidelity)."""

from __future__ import annotations

import pytest

from repro.nn import model_zoo
from repro.nn.graph import ModelSpec


class TestRegistry:
    def test_all_paper_models_registered(self):
        for name in model_zoo.PAPER_MODELS:
            assert name in model_zoo.MODEL_BUILDERS

    def test_list_models_sorted(self):
        names = model_zoo.list_models()
        assert names == sorted(names)

    def test_get_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="vgg16"):
            model_zoo.get("resnet101")

    @pytest.mark.parametrize("name", model_zoo.list_models())
    def test_every_model_builds_and_validates(self, name):
        model = model_zoo.get(name)
        assert isinstance(model, ModelSpec)
        assert model.num_spatial_layers >= 2
        assert model.total_macs > 0


class TestVGG16:
    def test_layer_counts(self):
        vgg = model_zoo.vgg16()
        convs = [l for l in vgg.layers if type(l).__name__ == "ConvSpec"]
        pools = [l for l in vgg.layers if type(l).__name__ == "PoolSpec"]
        dense = [l for l in vgg.layers if type(l).__name__ == "DenseSpec"]
        assert (len(convs), len(pools), len(dense)) == (13, 5, 3)

    def test_backbone_macs_close_to_reference(self):
        # VGG-16 backbone is ~15.3 GMACs at 224x224.
        vgg = model_zoo.vgg16()
        assert 14e9 < vgg.backbone_macs < 16.5e9

    def test_final_feature_map(self):
        vgg = model_zoo.vgg16()
        assert vgg.spatial_layers[-1].output_shape == (7, 7, 512)

    def test_classifier_output(self):
        vgg = model_zoo.vgg16()
        assert vgg.layers[-1].out_c == 1000


class TestOtherModels:
    def test_resnet50_macs_ballpark(self):
        resnet = model_zoo.resnet50()
        assert 3.0e9 < resnet.backbone_macs < 5.0e9

    def test_resnet50_final_shape(self):
        resnet = model_zoo.resnet50()
        assert resnet.spatial_layers[-2].output_shape == (7, 7, 2048)

    def test_inception_input_size(self):
        inception = model_zoo.inception_v3()
        assert inception.input_shape == (299, 299, 3)

    def test_yolov2_grid(self):
        yolo = model_zoo.yolov2()
        assert yolo.layers[-1].output_shape == (13, 13, 425)
        assert len(yolo.head_layers) == 0

    def test_ssd_vgg16_input(self):
        ssd = model_zoo.ssd_vgg16()
        assert ssd.input_shape == (300, 300, 3)

    def test_openpose_output_stride(self):
        op = model_zoo.openpose()
        # Three pools -> 368 / 8 = 46.
        assert op.layers[-1].out_h == 46

    def test_voxelnet_bev_input(self):
        vox = model_zoo.voxelnet()
        assert vox.input_shape[2] == 128

    def test_detection_models_have_no_dense_head(self):
        for name in ("yolov2", "ssd_vgg16", "ssd_resnet50", "openpose", "voxelnet"):
            assert len(model_zoo.get(name).head_layers) == 0, name

    def test_classification_models_have_dense_head(self):
        for name in ("vgg16", "resnet50", "inception_v3"):
            assert len(model_zoo.get(name).head_layers) >= 1, name

    def test_tiny_and_small_models_are_small(self):
        assert model_zoo.tiny_cnn().total_macs < 1e8
        assert model_zoo.small_vgg().total_macs < 1e9

    def test_models_are_rebuilt_fresh(self):
        assert model_zoo.get("vgg16") is not model_zoo.get("vgg16")
