"""Tests for the Vertical-Splitting Law and split-part construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import model_zoo
from repro.nn.splitting import (
    SplitDecision,
    per_layer_row_ranges,
    propagate_output_height,
    required_input_rows,
    required_input_rows_chain,
    split_volume,
    total_overlap_rows,
    vsl_input_height,
    vsl_layer_input_height,
)
from repro.nn.layers import ConvSpec, PoolSpec


@pytest.fixture(scope="module")
def vgg():
    return model_zoo.vgg16()


class TestVSLFormulas:
    def test_single_layer_eq2(self):
        conv = ConvSpec(name="c", in_h=224, in_w=224, in_c=3, out_channels=8, kernel_size=3,
                        stride_size=1, padding_size=0)
        # Eq. 2: h_in = (h_out - 1) * S + F
        assert vsl_layer_input_height(conv, 10) == 12

    def test_stride_two(self):
        pool = PoolSpec(name="p", in_h=224, in_w=224, in_c=8, kernel_size=2, stride_size=2)
        assert vsl_layer_input_height(pool, 5) == 10

    def test_zero_rows(self):
        conv = ConvSpec(name="c", in_h=8, in_w=8, in_c=3, out_channels=8, padding_size=1)
        assert vsl_layer_input_height(conv, 0) == 0

    def test_propagate_matches_paper_example(self, vgg):
        # First VGG block: conv3x3(s1), conv3x3(s1), pool2(s2).
        layers = vgg.spatial_layers[:3]
        heights = propagate_output_height(layers, 4)
        # pool needs (4-1)*2+2 = 8 rows from conv1_2; conv1_2 needs 10 from conv1_1.
        assert heights == [10, 8, 4]

    def test_vsl_input_height_chains_eq1_eq2(self, vgg):
        layers = vgg.spatial_layers[:3]
        # conv1_1 out = 10 -> input needed = (10-1)*1+3 = 12 (ignores padding, per paper).
        assert vsl_input_height(layers, 4) == 12

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            propagate_output_height([], 4)


class TestRequiredInputRows:
    def test_interior_range_same_padding(self):
        conv = ConvSpec(name="c", in_h=32, in_w=32, in_c=3, out_channels=8, padding_size=1)
        lo, hi = required_input_rows(conv, 10, 20)
        assert (lo, hi) == (9, 21)

    def test_top_edge_clipped(self):
        conv = ConvSpec(name="c", in_h=32, in_w=32, in_c=3, out_channels=8, padding_size=1)
        assert required_input_rows(conv, 0, 4) == (0, 5)

    def test_bottom_edge_clipped(self):
        conv = ConvSpec(name="c", in_h=32, in_w=32, in_c=3, out_channels=8, padding_size=1)
        assert required_input_rows(conv, 28, 32) == (27, 32)

    def test_empty_range(self):
        conv = ConvSpec(name="c", in_h=32, in_w=32, in_c=3, out_channels=8, padding_size=1)
        assert required_input_rows(conv, 5, 5) == (0, 0)

    def test_out_of_range_rejected(self):
        conv = ConvSpec(name="c", in_h=32, in_w=32, in_c=3, out_channels=8, padding_size=1)
        with pytest.raises(ValueError):
            required_input_rows(conv, 0, 33)

    def test_pooling_rows(self):
        pool = PoolSpec(name="p", in_h=32, in_w=32, in_c=3)
        assert required_input_rows(pool, 2, 6) == (4, 12)

    def test_chain_covers_full_height(self, vgg):
        layers = list(vgg.spatial_layers[:6])
        lo, hi = required_input_rows_chain(layers, 0, layers[-1].out_h)
        assert (lo, hi) == (0, layers[0].in_h)

    def test_per_layer_ranges_monotone(self, vgg):
        layers = list(vgg.spatial_layers[:6])
        ranges = per_layer_row_ranges(layers, 10, 20)
        for (a, b), layer in zip(ranges, layers):
            assert 0 <= a < b <= layer.out_h


class TestSplitDecision:
    def test_row_ranges_partition_height(self):
        d = SplitDecision(cuts=(3, 7, 7), output_height=10)
        ranges = d.row_ranges()
        assert ranges == [(0, 3), (3, 7), (7, 7), (7, 10)]
        assert sum(b - a for a, b in ranges) == 10

    def test_rows_per_device(self):
        d = SplitDecision(cuts=(5,), output_height=10)
        assert d.rows_per_device() == [5, 5]

    def test_cuts_must_be_sorted(self):
        with pytest.raises(ValueError):
            SplitDecision(cuts=(7, 3), output_height=10)

    def test_cuts_in_range(self):
        with pytest.raises(ValueError):
            SplitDecision(cuts=(11,), output_height=10)

    def test_from_fractions_conserves_rows(self):
        d = SplitDecision.from_fractions([0.4, 0.35, 0.25], 17)
        assert sum(d.rows_per_device()) == 17

    def test_from_fractions_zero_total(self):
        d = SplitDecision.from_fractions([0.0, 0.0], 9)
        assert d.rows_per_device() == [9, 0]

    def test_from_fractions_negative_rejected(self):
        with pytest.raises(ValueError):
            SplitDecision.from_fractions([-0.5, 1.5], 10)

    def test_equal_split(self):
        d = SplitDecision.equal(4, 8)
        assert d.rows_per_device() == [2, 2, 2, 2]

    def test_single_device(self):
        d = SplitDecision.single_device(2, 4, 9)
        assert d.rows_per_device() == [0, 0, 9, 0]

    @given(
        height=st.integers(1, 300),
        fractions=st.lists(st.floats(0, 1), min_size=1, max_size=8),
    )
    def test_fraction_rows_always_sum_to_height(self, height, fractions):
        d = SplitDecision.from_fractions(fractions, height)
        assert sum(d.rows_per_device()) == height
        assert all(r >= 0 for r in d.rows_per_device())


class TestSplitVolume:
    def test_parts_cover_output(self, vgg):
        volume = vgg.volume(0, 3)
        decision = SplitDecision.from_fractions([0.5, 0.3, 0.2], volume.output_height)
        parts = split_volume(volume, decision)
        covered = sorted((p.out_rows for p in parts if not p.is_empty))
        assert covered[0][0] == 0
        assert covered[-1][1] == volume.output_height
        for (a0, b0), (a1, _b1) in zip(covered, covered[1:]):
            assert b0 == a1

    def test_empty_part_flagged(self, vgg):
        volume = vgg.volume(0, 3)
        decision = SplitDecision.single_device(0, 3, volume.output_height)
        parts = split_volume(volume, decision)
        assert not parts[0].is_empty
        assert parts[1].is_empty and parts[2].is_empty
        assert parts[1].macs == 0 and parts[1].input_bytes == 0

    def test_parts_macs_at_least_volume_macs(self, vgg):
        volume = vgg.volume(0, 3)
        decision = SplitDecision.equal(4, volume.output_height)
        parts = split_volume(volume, decision)
        assert sum(p.macs for p in parts) >= volume.macs

    def test_single_part_macs_equals_volume(self, vgg):
        volume = vgg.volume(0, 3)
        decision = SplitDecision.single_device(1, 4, volume.output_height)
        parts = split_volume(volume, decision)
        assert sum(p.macs for p in parts) == volume.macs

    def test_height_mismatch_rejected(self, vgg):
        volume = vgg.volume(0, 3)
        with pytest.raises(ValueError):
            split_volume(volume, SplitDecision(cuts=(1,), output_height=5))

    def test_overlap_rows_zero_for_single_part(self, vgg):
        volume = vgg.volume(0, 3)
        parts = split_volume(volume, SplitDecision.single_device(0, 2, volume.output_height))
        assert total_overlap_rows(parts) == 0

    def test_overlap_rows_positive_for_equal_split(self, vgg):
        volume = vgg.volume(0, 6)
        parts = split_volume(volume, SplitDecision.equal(4, volume.output_height))
        assert total_overlap_rows(parts) > 0

    @given(
        cuts=st.lists(st.integers(0, 112), min_size=1, max_size=5),
    )
    @settings(max_examples=20)
    def test_split_parts_consistent_for_random_cuts(self, cuts, vgg):
        volume = vgg.volume(0, 3)
        decision = SplitDecision(
            cuts=tuple(sorted(min(c, volume.output_height) for c in cuts)),
            output_height=volume.output_height,
        )
        parts = split_volume(volume, decision)
        assert len(parts) == decision.num_devices
        for part in parts:
            if part.is_empty:
                continue
            lo, hi = part.in_rows
            assert 0 <= lo < hi <= volume.first.in_h
            assert part.macs > 0
