"""Tests for layer configuration dataclasses."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.layers import (
    ConvSpec,
    DenseSpec,
    PoolSpec,
    conv_output_size,
    same_padding,
)
from repro.utils.units import FP16_BYTES


def make_conv(**overrides):
    params = dict(
        name="conv",
        in_h=32,
        in_w=32,
        in_c=3,
        out_channels=16,
        kernel_size=3,
        stride_size=1,
        padding_size=1,
    )
    params.update(overrides)
    return ConvSpec(**params)


class TestConvOutputSize:
    def test_same_padding_keeps_size(self):
        assert conv_output_size(224, 3, 1, 1) == 224

    def test_valid_conv_shrinks(self):
        assert conv_output_size(224, 3, 1, 0) == 222

    def test_stride_two_halves(self):
        assert conv_output_size(224, 2, 2, 0) == 112

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    @given(
        size=st.integers(8, 256),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 3),
        padding=st.integers(0, 3),
    )
    def test_output_positive_and_bounded(self, size, kernel, stride, padding):
        if size + 2 * padding < kernel:
            return
        out = conv_output_size(size, kernel, stride, padding)
        assert 1 <= out <= size + 2 * padding


class TestSamePadding:
    def test_kernel3(self):
        assert same_padding(3) == 1

    def test_kernel7(self):
        assert same_padding(7) == 3

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            same_padding(2)


class TestConvSpec:
    def test_output_shape(self):
        conv = make_conv()
        assert conv.output_shape == (32, 32, 16)

    def test_stride_two_output(self):
        conv = make_conv(stride_size=2)
        assert conv.out_h == 16

    def test_macs_formula(self):
        conv = make_conv()
        assert conv.macs == 32 * 32 * 16 * 3 * 3 * 3

    def test_weight_count_includes_bias(self):
        conv = make_conv()
        assert conv.weight_count == 3 * 3 * 3 * 16 + 16

    def test_weight_count_without_bias(self):
        conv = make_conv(has_bias=False)
        assert conv.weight_count == 3 * 3 * 3 * 16

    def test_output_bytes_fp16(self):
        conv = make_conv()
        assert conv.output_bytes == 32 * 32 * 16 * FP16_BYTES

    def test_is_spatial(self):
        assert make_conv().is_spatial

    def test_macs_for_rows_scales_linearly(self):
        conv = make_conv()
        assert conv.macs_for_rows(16) == conv.macs // 2

    def test_macs_for_zero_rows(self):
        assert make_conv().macs_for_rows(0) == 0

    def test_macs_for_rows_caps_at_height(self):
        conv = make_conv()
        assert conv.macs_for_rows(1000) == conv.macs

    def test_grouped_conv_macs_reduced(self):
        dense_conv = make_conv(in_c=16, out_channels=16)
        grouped = make_conv(in_c=16, out_channels=16, groups=4)
        assert grouped.macs == dense_conv.macs // 4

    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError):
            make_conv(in_c=16, out_channels=16, groups=3)

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            make_conv(activation="swish")

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            make_conv(in_h=0)

    def test_kernel_larger_than_padded_input_rejected(self):
        with pytest.raises(ValueError):
            make_conv(in_h=2, in_w=2, kernel_size=5, padding_size=0)

    def test_with_input_changes_shape(self):
        conv = make_conv().with_input(64, 64, 3)
        assert conv.out_h == 64
        assert conv.out_channels == 16

    def test_frozen(self):
        with pytest.raises(Exception):
            make_conv().in_h = 5  # type: ignore[misc]


class TestPoolSpec:
    def test_output_shape(self):
        pool = PoolSpec(name="p", in_h=32, in_w=32, in_c=8, kernel_size=2, stride_size=2)
        assert pool.output_shape == (16, 16, 8)

    def test_channels_preserved(self):
        pool = PoolSpec(name="p", in_h=10, in_w=10, in_c=5)
        assert pool.out_c == 5

    def test_no_weights(self):
        pool = PoolSpec(name="p", in_h=10, in_w=10, in_c=5)
        assert pool.weight_count == 0
        assert pool.weight_bytes == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PoolSpec(name="p", in_h=10, in_w=10, in_c=5, mode="median")

    def test_avg_mode_accepted(self):
        pool = PoolSpec(name="p", in_h=8, in_w=8, in_c=2, kernel_size=8, stride_size=8, mode="avg")
        assert pool.out_h == 1

    def test_is_spatial(self):
        assert PoolSpec(name="p", in_h=10, in_w=10, in_c=5).is_spatial


class TestDenseSpec:
    def test_in_features_flattened(self):
        dense = DenseSpec(name="fc", in_h=7, in_w=7, in_c=512, out_features=1000)
        assert dense.in_features == 7 * 7 * 512

    def test_output_shape(self):
        dense = DenseSpec(name="fc", in_h=1, in_w=1, in_c=128, out_features=10)
        assert dense.output_shape == (1, 1, 10)

    def test_not_spatial(self):
        dense = DenseSpec(name="fc", in_h=1, in_w=1, in_c=128, out_features=10)
        assert not dense.is_spatial

    def test_macs(self):
        dense = DenseSpec(name="fc", in_h=1, in_w=1, in_c=128, out_features=10)
        assert dense.macs == 1280

    def test_macs_for_rows_all_or_nothing(self):
        dense = DenseSpec(name="fc", in_h=1, in_w=1, in_c=128, out_features=10)
        assert dense.macs_for_rows(1) == dense.macs
        assert dense.macs_for_rows(0) == 0

    def test_weight_count(self):
        dense = DenseSpec(name="fc", in_h=1, in_w=1, in_c=128, out_features=10, has_bias=True)
        assert dense.weight_count == 128 * 10 + 10
