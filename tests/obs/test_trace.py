"""Tracer unit tests: canonical order, byte serialisation, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, TraceEvent, Tracer


def make_tracer():
    tracer = Tracer()
    tracer.span(10.0, 5.0, "tenant:alpha", "request", "serve", latency_ms=5.0)
    tracer.instant(3.0, "tenant:alpha", "request", "arrive")
    tracer.instant(3.0, "fleet", "fault", "crash", device="nano0")
    tracer.span(0.0, 4.0, "lane:nano0:compute", "lane", "compute", jobs=2)
    return tracer


class TestCanonicalOrder:
    def test_sorted_events_ignore_emission_order(self):
        a = make_tracer()
        b = Tracer()
        for event in reversed(a.events):
            b.events.append(event)
        assert a.sorted_events() == b.sorted_events()
        assert a.lines() == b.lines()

    def test_sort_key_is_full_tuple(self):
        tracer = Tracer()
        tracer.instant(1.0, "t", "k", "n", x=2)
        tracer.instant(1.0, "t", "k", "n", x=1)
        args = [e.args for e in tracer.sorted_events()]
        assert args == [(("x", 1),), (("x", 2),)]

    def test_lines_render_floats_via_repr(self):
        tracer = Tracer()
        tracer.instant(0.1 + 0.2, "t", "k", "n", v=0.1 + 0.2)
        (line,) = tracer.lines()
        assert repr(0.30000000000000004) in line
        assert line.count(repr(0.1 + 0.2)) == 2

    def test_events_are_hashable_records(self):
        event = TraceEvent(1.0, "t", "k", "n", args=(("a", 1.0),))
        assert event in {event}


class TestChromeExport:
    def test_track_families_map_to_pids(self):
        chrome = make_tracer().to_chrome()
        by_name = {}
        for record in chrome["traceEvents"]:
            if record["ph"] == "M" and record["name"] == "thread_name":
                by_name[record["args"]["name"]] = record["pid"]
        assert by_name["tenant:alpha"] == 1
        assert by_name["lane:nano0:compute"] == 2
        assert by_name["fleet"] == 3

    def test_spans_are_complete_events_in_microseconds(self):
        chrome = make_tracer().to_chrome()
        serve = [r for r in chrome["traceEvents"] if r.get("name") == "serve"]
        assert serve and serve[0]["ph"] == "X"
        assert serve[0]["ts"] == 10_000.0 and serve[0]["dur"] == 5_000.0

    def test_instants_are_thread_scoped(self):
        chrome = make_tracer().to_chrome()
        arrive = [r for r in chrome["traceEvents"] if r.get("name") == "arrive"]
        assert arrive[0]["ph"] == "i" and arrive[0]["s"] == "t"

    def test_export_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        make_tracer().write_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert {r["ph"] for r in loaded["traceEvents"]} == {"M", "X", "i"}


class TestNullTracer:
    def test_drops_everything(self):
        NULL_TRACER.instant(1.0, "t", "k", "n")
        NULL_TRACER.span(1.0, 2.0, "t", "k", "n")
        assert NULL_TRACER.events == []
        assert not NULL_TRACER.enabled

    def test_is_a_tracer(self):
        assert isinstance(NULL_TRACER, Tracer)
        assert isinstance(NULL_TRACER, NullTracer)


class TestArgsDeterminism:
    @pytest.mark.parametrize("order", [("a", "b"), ("b", "a")])
    def test_kwargs_sorted_at_emission(self, order):
        tracer = Tracer()
        tracer.instant(0.0, "t", "k", "n", **{order[0]: 1, order[1]: 2})
        assert [k for k, _ in tracer.events[0].args] == sorted(order)


class TestDeferredDerivation:
    """``defer_report`` is lazy, and indistinguishable from the eager path."""

    @staticmethod
    def _report():
        import numpy as np
        from types import SimpleNamespace

        tenant = SimpleNamespace(
            name="alpha",
            arrival_s=np.array([0.001, 0.002]),
            start_s=np.array([0.0015, 0.003]),
            completion_s=np.array([0.002, 0.004]),
            latency_ms=np.array([0.5, 1.0]),
            response_ms=np.array([1.0, 2.0]),
            deadline_missed=np.array([False, True]),
            rejected_times_s=np.array([0.005]),
            denied_times_s=np.array([], dtype=float),
            shed_times_s=np.array([], dtype=float),
            abandoned_times_s=np.array([], dtype=float),
            replan_times_s=np.array([], dtype=float),
        )
        return SimpleNamespace(tenants=[tenant])

    def test_defer_report_does_no_work_until_read(self):
        tracer = Tracer()
        tracer.defer_report(self._report())
        assert tracer._events == []  # nothing materialised yet
        assert len(tracer.events) == 9  # 2 requests x 4 events + 1 reject

    def test_deferred_matches_eager(self):
        from repro.obs import trace_serving_report

        report = self._report()
        lazy, eager = Tracer(), Tracer()
        lazy.defer_report(report)
        trace_serving_report(eager, report)
        assert lazy.lines() == eager.lines()

    def test_live_events_and_deferral_mix_canonically(self):
        report = self._report()
        a = Tracer()
        a.instant(0.0, "fleet", "fault", "crash", device="nano0")
        a.defer_report(report)
        b = Tracer()
        b.defer_report(report)
        _ = b.events  # force derivation before the live event
        b.instant(0.0, "fleet", "fault", "crash", device="nano0")
        assert a.lines() == b.lines()

    def test_null_tracer_defers_nothing(self):
        NULL_TRACER.defer_report(self._report())
        assert NULL_TRACER.events == []
