"""MetricsRegistry unit tests: determinism, Prometheus exposition, recording."""

from __future__ import annotations

import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry


def populated_registry(observe_order):
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "help", ("tenant",))
    gauge = registry.gauge("repro_test_depth", "", ("tenant",))
    hist = registry.histogram("repro_test_ms", "", ("tenant",), buckets=(5.0, 50.0))
    for tenant, value in observe_order:
        counter.inc(1, tenant=tenant)
        gauge.set(value, tenant=tenant)
        hist.observe(value, tenant=tenant)
    return registry


class TestDeterminism:
    def test_snapshot_independent_of_observation_order(self):
        forward = [("a", 3.0), ("b", 60.0), ("a", 7.0)]
        # Same multiset of observations per series, different interleaving.
        backward = [("b", 60.0), ("a", 3.0), ("a", 7.0)]
        assert (
            populated_registry(forward).snapshot()
            == populated_registry(backward).snapshot()
        )

    def test_snapshot_is_json_serialisable(self):
        snap = populated_registry([("a", 3.0)]).snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "h", ("tenant",))
        second = registry.counter("repro_x_total", "h", ("tenant",))
        assert first is second

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_counters_reject_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_x_total").inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "", ("tenant",))
        with pytest.raises(ValueError):
            counter.inc(1, nottenant="a")


class TestHistogram:
    def test_fixed_buckets_place_values(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h_ms", "", (), buckets=(5.0, 50.0))
        for value in (1.0, 5.0, 6.0, 999.0):
            hist.observe(value)
        (entry,) = registry.snapshot()["repro_h_ms"]["series"].values()
        # <=5, <=50, +Inf — boundary value 5.0 lands in its own bucket.
        assert entry["counts"] == [2, 1, 1]
        assert entry["count"] == 4 and entry["sum"] == 1011.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h_ms", buckets=(5.0, 5.0))

    def test_default_buckets_are_the_documented_ladder(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 5.0
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 10000.0


class TestPrometheusText:
    def test_exposition_shape(self):
        text = populated_registry([("a", 3.0), ("b", 60.0)]).to_prometheus()
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{tenant="a"} 1' in text
        assert 'repro_test_ms_bucket{tenant="b",le="+Inf"} 1' in text
        assert 'repro_test_ms_count{tenant="b"} 1' in text
        assert text.endswith("\n")

    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h_ms", "", (), buckets=(5.0, 50.0))
        for value in (1.0, 2.0, 10.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'repro_h_ms_bucket{le="5"} 2' in text
        assert 'repro_h_ms_bucket{le="50"} 3' in text
        assert 'repro_h_ms_bucket{le="+Inf"} 3' in text


class TestObserveMany:
    """Bulk observation is bit-identical to a scalar ``observe`` loop."""

    VALUES = (1.0, 5.0, 6.0, 999.0, 0.1 + 0.2, 49.999999999999)

    def test_matches_scalar_loop_exactly(self):
        scalar = MetricsRegistry().histogram("h", buckets=(5.0, 50.0))
        bulk = MetricsRegistry().histogram("h", buckets=(5.0, 50.0))
        for value in self.VALUES:
            scalar.observe(value)
        bulk.observe_many(list(self.VALUES))
        assert scalar.series[()] == bulk.series[()]

    def test_accepts_numpy_arrays(self):
        import numpy as np

        scalar = MetricsRegistry().histogram("h", label_names=("tenant",), buckets=(5.0, 50.0))
        bulk = MetricsRegistry().histogram("h", label_names=("tenant",), buckets=(5.0, 50.0))
        values = np.array(self.VALUES)
        for value in values:
            scalar.observe(float(value), tenant="a")
        bulk.observe_many(values, tenant="a")
        assert scalar.series[("a",)] == bulk.series[("a",)]

    def test_empty_batch_creates_no_series(self):
        hist = MetricsRegistry().histogram("h", buckets=(5.0,))
        hist.observe_many([])
        assert hist.series == {}

    def test_batches_accumulate(self):
        hist = MetricsRegistry().histogram("h", buckets=(5.0,))
        hist.observe_many([1.0, 2.0])
        hist.observe_many([10.0])
        counts, total, n = hist.series[()]
        assert counts == [2, 1] and n == 3 and total == 1.0 + 2.0 + 10.0

    def test_label_mismatch_raises(self):
        hist = MetricsRegistry().histogram("h", label_names=("tenant",), buckets=(5.0,))
        with pytest.raises(ValueError):
            hist.observe_many([1.0], wrong="x")


class TestQuantile:
    """Histogram quantiles are numpy-exact when data sits on bucket bounds.

    The estimator reconstructs each observation at its bucket's upper
    bound, then interpolates exactly like ``np.percentile`` (linear
    method).  When every observation *is* a bucket bound the
    reconstruction is lossless, so the estimate must match numpy bit for
    bit — both lerp branches included.
    """

    BUCKETS = (5.0, 10.0, 20.0, 50.0)
    VALUES = [5.0, 5.0, 10.0, 20.0, 20.0, 20.0, 50.0]

    def _hist(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_ms", "", (), buckets=self.BUCKETS)
        for value in self.VALUES:
            hist.observe(value)
        return registry, hist

    @pytest.mark.parametrize("q", [0, 10, 25, 37.5, 50, 62.5, 75, 90, 95, 99, 100])
    def test_matches_numpy_percentile_exactly(self, q):
        import numpy as np

        _, hist = self._hist()
        expected = float(np.percentile(np.asarray(self.VALUES), q))
        # Bit-exact, not approx: repr equality is the parity-contract form.
        assert repr(hist.quantile(q)) == repr(expected)

    def test_both_lerp_branches_are_numpy_exact(self):
        import numpy as np

        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        # n=3: q=30 -> h=0.6 (t >= 0.5 branch), q=20 -> h=0.4 (t < 0.5).
        for q in (20, 30):
            assert repr(hist.quantile(q)) == repr(
                float(np.percentile([1.0, 2.0, 4.0], q))
            )

    def test_overflow_observations_clamp_to_last_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(5.0, 10.0))
        hist.observe(999.0)
        assert hist.quantile(50) == 10.0
        assert hist.quantile(100) == 10.0

    def test_labelled_series_and_registry_lookup(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_ms", "", ("tenant",), buckets=(5.0, 10.0))
        hist.observe(5.0, tenant="a")
        hist.observe(10.0, tenant="b")
        assert registry.quantile("repro_q_ms", 50, tenant="a") == 5.0
        assert registry.quantile("repro_q_ms", 50, tenant="b") == 10.0

    def test_errors(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_q_ms", "", (), buckets=(5.0,))
        with pytest.raises(KeyError):
            hist.quantile(50)  # no observations yet
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-1)
        with pytest.raises(ValueError):
            hist.quantile(101)
        with pytest.raises(KeyError):
            registry.quantile("repro_nope_ms", 50)
        registry.counter("repro_c_total").inc(1)
        with pytest.raises(KeyError):
            registry.quantile("repro_c_total", 50)
