"""Chrome trace-event export round-trip under churn + predictive admission.

``repro analyze --trace-json`` re-imports what ``repro serve --trace-json``
exported, so the export must be lossless where it matters: every event
comes back (count and identity), track grouping survives the pid/tid
mapping, the stream stays canonically ordered with monotonic timestamps,
and the args — which carry the attribution's exactness anchors
(``latency_ms`` / ``gate_wait_ms``) — round-trip bit-for-bit through
JSON.  Timestamps pass through the microsecond conversion and may wobble
by an ulp; they are compared approximately, never bitwise.
"""

from __future__ import annotations

import json

import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer, events_from_chrome
from repro.obs.analysis import analyze_chrome, analyze_serving
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.faults import RetryPolicy
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
)

CHURN = "churn:events=crash:0@120;leave:1@400;join:0@900"


@pytest.fixture(scope="module")
def traced_run():
    """A contended run with churn and predictive admission, traced live."""
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    tenants = [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=3.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            slo=SLO(deadline_ms=60.0),
        ),
    ]
    policy = ClusterPolicy(
        discipline="wfq",
        admission="predictive",
        on_predicted_miss="requeue",
        max_inflight=4,
    )
    tracer = Tracer()
    report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants,
        duration_s=2.0,
        policy=policy,
        faults=CHURN,
        retry=RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7),
        tracer=tracer,
    )
    return report, tracer


@pytest.fixture(scope="module")
def roundtrip(traced_run):
    _, tracer = traced_run
    # Through actual JSON text, as the CLI file write/read does.
    data = json.loads(json.dumps(
        tracer.to_chrome(provenance={"repro_version": "x", "argv": [], "scenario": None})
    ))
    return tracer.sorted_events(), events_from_chrome(data), data


class TestRoundTrip:
    def test_every_event_comes_back(self, roundtrip):
        original, reimported, _ = roundtrip
        assert len(reimported) == len(original)
        # Identity (track, kind, name) survives as an exact multiset.
        assert sorted((e.track, e.kind, e.name) for e in reimported) == sorted(
            (e.track, e.kind, e.name) for e in original
        )

    def test_args_roundtrip_bit_exactly(self, roundtrip):
        original, reimported, _ = roundtrip
        # JSON emits shortest-repr floats, which parse back to the same
        # bits — the exactness anchors of the attribution.
        assert sorted(e.args for e in reimported) == sorted(
            e.args for e in original
        )

    def test_timestamps_monotonic_and_close(self, roundtrip):
        original, reimported, _ = roundtrip
        ts = [e.ts_ms for e in reimported]
        assert ts == sorted(ts)
        # The µs conversion can wobble a timestamp by an ulp, which may
        # reorder events inside a near-tie group — so pair by identity
        # (track/kind/name/args round-trip exactly), not by index.
        def by_identity(events):
            groups = {}
            for e in events:
                groups.setdefault((e.track, e.kind, e.name, e.args), []).append(
                    (e.ts_ms, e.dur_ms)
                )
            return {key: sorted(val) for key, val in groups.items()}

        a, b = by_identity(original), by_identity(reimported)
        assert a.keys() == b.keys()
        for key, pairs in a.items():
            for (ts_a, dur_a), (ts_b, dur_b) in zip(pairs, b[key]):
                assert ts_b == pytest.approx(ts_a, rel=1e-12, abs=1e-9)
                assert dur_b == pytest.approx(dur_a, rel=1e-12, abs=1e-9)

    def test_track_grouping_survives_the_pid_tid_mapping(self, roundtrip):
        original, _, data = roundtrip
        threads = {
            (m["pid"], m["tid"]): m["args"]["name"]
            for m in data["traceEvents"]
            if m.get("ph") == "M" and m.get("name") == "thread_name"
        }
        # One thread per track, and every track of the original stream is
        # named — lanes, tenants, fleet and control alike.
        assert len(set(threads.values())) == len(threads)
        assert set(threads.values()) == {e.track for e in original}
        # Tracks of one family share a process.
        pid_of = {name: pid for (pid, _), name in threads.items()}
        tenant_pids = {pid for name, pid in pid_of.items() if name.startswith("tenant:")}
        lane_pids = {pid for name, pid in pid_of.items() if name.startswith("lane:")}
        assert len(tenant_pids) == 1 and len(lane_pids) == 1
        assert tenant_pids != lane_pids

    def test_churn_and_admission_events_survive(self, roundtrip):
        _, reimported, _ = roundtrip
        kinds = {(e.kind, e.name) for e in reimported}
        assert ("fault", "crash") in kinds
        assert ("request", "dispatch") in kinds
        assert ("lane", "compute") in kinds

    def test_provenance_is_carried_but_ignored_by_import(self, roundtrip):
        _, reimported, data = roundtrip
        assert data["provenance"]["repro_version"] == "x"
        assert all(e.kind != "provenance" for e in reimported)

    def test_reimported_trace_attributes_exactly(self, traced_run, roundtrip):
        report, tracer = traced_run
        _, _, data = roundtrip
        via_chrome = analyze_chrome(data)
        via_chrome.check_exact()
        live = analyze_serving(report, tracer)
        # The exactness anchors agree bit-for-bit; per-tenant rollups of
        # anchor-derived fields therefore agree exactly too.
        assert via_chrome.num_requests == live.num_requests
        for tenant in live.tenants:
            assert via_chrome.tenant(tenant.name).latency_ms == tenant.latency_ms


class TestImportValidation:
    def test_missing_trace_events_rejected(self):
        with pytest.raises(ValueError, match="traceEvents"):
            events_from_chrome({"displayTimeUnit": "ms"})

    def test_unnamed_thread_rejected(self):
        data = {
            "traceEvents": [
                {"ph": "i", "name": "x", "cat": "request", "ts": 0.0,
                 "pid": 1, "tid": 9, "s": "t"},
            ]
        }
        with pytest.raises(ValueError):
            events_from_chrome(data)
