"""Golden-file pin of the ``repro analyze --report-json`` schema.

``docs/observability.md`` documents the JSON written by
``repro analyze --report-json``; downstream tooling (the bench-analysis
gate, latency dashboards) parses it by key path.  This test flattens the
attribution of a fully-featured contended run — wfq + max_inflight gate,
churn, retries, predictive admission — into ``key.path: type`` pairs and
compares them against the committed golden file, so any schema change is
a deliberate two-file diff (code + golden + docs), never an accident.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/obs/test_analysis_schema.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.obs.analysis import analyze_serving
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.faults import RetryPolicy
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
)

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "analysis_report_schema.json"


def _flatten_types(value, prefix=""):
    """``{key.path: type-name}`` with list elements collapsed to ``[]``.

    Same convention as ``tests/serving/test_report_schema.py``: lists
    contribute their first element's schema, ints and floats both pin as
    ``number`` so 0-valued floats do not flap the schema.
    """
    out = {}
    if isinstance(value, dict):
        for key, sub in sorted(value.items()):
            out.update(_flatten_types(sub, f"{prefix}.{key}" if prefix else key))
    elif isinstance(value, list):
        out[prefix] = "list"
        if value:
            out.update(_flatten_types(value[0], f"{prefix}[]"))
    else:
        type_name = type(value).__name__
        out[prefix] = {"int": "number", "float": "number", "bool": "bool",
                       "str": "str", "NoneType": "null"}.get(type_name, type_name)
    return out


def build_analysis_payload():
    """One contended, churned run populating every attribution field."""
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    tenants = [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=3.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            slo=SLO(deadline_ms=60.0),
        ),
    ]
    policy = ClusterPolicy(
        discipline="wfq",
        admission="predictive",
        on_predicted_miss="requeue",
        max_inflight=4,
    )
    tracer = Tracer()
    report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants,
        duration_s=2.0,
        policy=policy,
        faults="churn:events=crash:0@120;leave:1@400;join:0@900",
        retry=RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7),
        tracer=tracer,
    )
    analysis = analyze_serving(report, tracer)
    assert analysis.lanes and analysis.contended_requests > 0, (
        "schema scenario went uncontended; the golden would under-pin"
    )
    return analysis.to_dict()


def test_analysis_json_schema_matches_golden():
    assert GOLDEN.exists(), (
        f"golden schema missing at {GOLDEN}; generate it with "
        f"`PYTHONPATH=src python {__file__} --regenerate`"
    )
    expected = json.loads(GOLDEN.read_text())
    actual = _flatten_types(build_analysis_payload())
    assert actual == expected, (
        "analysis report JSON schema drifted from tests/data/"
        "analysis_report_schema.json — if intentional, regenerate the golden "
        "file AND update the schema notes in docs/observability.md"
    )


def test_payload_is_json_serialisable():
    payload = build_analysis_payload()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["exact"] is True


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(
            json.dumps(_flatten_types(build_analysis_payload()), indent=2) + "\n"
        )
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
