"""Critical-path attribution unit tests: tiling, rollups, exactness.

The end-to-end parity of the analysis (byte-identical across the
reference, batched and array loops, exact on every parity-suite scenario)
lives in ``tests/serving/test_analysis_parity.py``; here the pass itself
is pinned on hand-built canonical event streams where every expected
segment boundary is known in advance.
"""

from __future__ import annotations

import json

import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.obs.analysis import (
    AnalysisError,
    RequestAttribution,
    Segment,
    analyze_events,
    analyze_serving,
    analyze_trace,
)
from repro.obs.trace import TraceEvent
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
)


def ev(ts, track, kind, name, dur=0.0, **args):
    return TraceEvent(ts, track, kind, name, dur, tuple(sorted(args.items())))


def contended_request(tenant, start, latency, gate=0.0, queue=0.0, spans=()):
    """One request's canonical events: queue + serve + dispatch + lanes.

    ``spans`` are ``(offset_ms, dur_ms, device, role, wait_ms)`` relative
    to the dispatch release.
    """
    track = f"tenant:{tenant}"
    events = [
        ev(start - queue, track, "request", "queue", dur=queue),
        ev(start, track, "request", "serve", dur=latency, latency_ms=latency),
        ev(start, track, "request", "dispatch",
           gate_wait_ms=gate, latency_ms=latency, contended=True),
        ev(start + latency, track, "request", "complete",
           deadline_missed=False, response_ms=queue + latency),
    ]
    for offset, dur, device, role, wait in spans:
        events.append(
            ev(start + offset, f"lane:{device}:{role}", "lane", role,
               dur=dur, tenant=tenant, wait_ms=wait, jobs=1)
        )
    return events


class TestTiling:
    def test_gate_lanes_and_stall_tile_exactly(self):
        events = contended_request(
            "a", start=100.0, latency=10.0, gate=2.0, queue=1.5,
            spans=[(2.0, 5.0, "d0", "compute", 1.0), (7.0, 2.0, "d0", "send", 0.0)],
        )
        report = analyze_events(events)
        (request,) = report.requests
        assert [
            (s.label, s.start_ms, s.end_ms) for s in request.segments
        ] == [
            ("gate", 0.0, 2.0),
            ("compute", 2.0, 7.0),
            ("send", 7.0, 9.0),
            ("stall", 9.0, 10.0),
        ]
        assert request.by_label == {
            "gate": 2.0, "compute": 5.0, "send": 2.0, "stall": 1.0
        }
        assert request.queue_ms == 1.5
        assert request.lane_wait_ms == 1.0
        assert request.contended
        request.check_exact()

    def test_uncontended_request_is_one_service_segment(self):
        track = "tenant:a"
        events = [
            ev(5.0, track, "request", "queue", dur=0.0),
            ev(5.0, track, "request", "serve", dur=8.0, latency_ms=8.0),
            ev(13.0, track, "request", "complete",
               deadline_missed=False, response_ms=8.0),
        ]
        (request,) = analyze_events(events).requests
        assert request.segments == [Segment("service", "", 0.0, 8.0)]
        assert not request.contended
        request.check_exact()

    def test_overlap_tie_break_prefers_compute(self):
        # compute [0,4] and send [2,6] overlap on [2,4]: compute wins there.
        events = contended_request(
            "a", start=0.0, latency=6.0,
            spans=[(0.0, 4.0, "d0", "compute", 0.0), (2.0, 4.0, "d0", "send", 0.0)],
        )
        (request,) = analyze_events(events).requests
        assert [(s.label, s.start_ms, s.end_ms) for s in request.segments] == [
            ("compute", 0.0, 4.0),
            ("send", 4.0, 6.0),
        ]

    def test_spans_clamped_into_latency_window(self):
        # A lane span sticking past the latency (ulp wobble from a Chrome
        # re-import) must not break the telescoping chain.
        events = contended_request(
            "a", start=0.0, latency=5.0,
            spans=[(4.0, 2.0, "d0", "compute", 0.0)],
        )
        (request,) = analyze_events(events).requests
        assert request.segments[-1] == Segment("compute", "lane:d0:compute", 4.0, 5.0)
        request.check_exact()

    def test_zero_latency_request_closes_the_chain(self):
        track = "tenant:a"
        events = [
            ev(1.0, track, "request", "queue", dur=0.0),
            ev(1.0, track, "request", "serve", dur=0.0, latency_ms=0.0),
        ]
        (request,) = analyze_events(events).requests
        request.check_exact()
        assert request.attributed_ms == 0.0


class TestExactness:
    def test_check_exact_rejects_a_gapped_tiling(self):
        request = RequestAttribution(
            "a", 0, 0.0, 10.0, 0.0, True, 0.0, 0.0,
            [Segment("gate", "", 0.0, 2.0), Segment("stall", "", 3.0, 10.0)],
        )
        with pytest.raises(AssertionError, match="gap"):
            request.check_exact()
        assert not request.exact

    def test_check_exact_rejects_a_short_tiling(self):
        request = RequestAttribution(
            "a", 0, 0.0, 10.0, 0.0, True, 0.0, 0.0,
            [Segment("service", "", 0.0, 9.0)],
        )
        with pytest.raises(AssertionError, match="ends at"):
            request.check_exact()

    def test_check_exact_is_bitwise_not_approximate(self):
        # 0.1 + 0.2 != 0.3 in IEEE754: a numerically-plausible boundary
        # that is off by one ulp must fail.
        request = RequestAttribution(
            "a", 0, 0.0, 0.3, 0.0, True, 0.0, 0.0,
            [Segment("gate", "", 0.0, 0.1 + 0.2)],
        )
        with pytest.raises(AssertionError):
            request.check_exact()


class TestRollups:
    def test_tenant_rollup_sums_requests_and_counts_instants(self):
        track = "tenant:a"
        events = (
            contended_request("a", 0.0, 10.0, gate=2.0, queue=1.0,
                              spans=[(2.0, 8.0, "d0", "compute", 0.5)])
            + contended_request("a", 50.0, 4.0,
                                spans=[(0.0, 4.0, "d0", "compute", 0.0)])
            + [
                ev(3.0, track, "admission", "reject"),
                ev(4.0, track, "admission", "deny"),
                ev(5.0, track, "admission", "requeue"),
                ev(6.0, track, "fault", "shed"),
                ev(7.0, track, "fault", "abandon"),
                ev(8.0, track, "fault", "retry", attempt=2, delay_ms=25.0),
                ev(9.0, track, "control", "replan", live=3),
            ]
        )
        report = analyze_events(events)
        tenant = report.tenant("a")
        assert tenant.requests == 2
        assert tenant.latency_ms == 14.0
        assert tenant.queue_ms == 1.0
        assert tenant.by_label["compute"] == 12.0
        assert tenant.by_label["gate"] == 2.0
        assert (tenant.rejects, tenant.denies, tenant.requeues) == (1, 1, 1)
        assert (tenant.sheds, tenant.abandons, tenant.replans) == (1, 1, 1)
        assert tenant.retries == 1
        assert tenant.retry_backoff_ms == 25.0
        assert tenant.dominant == "compute"
        assert report.total("latency_ms") == 14.0
        assert report.total("compute") == 12.0

    def test_retry_chain_rolls_up_lost_attempts(self):
        track = "tenant:a"
        events = contended_request("a", 0.0, 5.0) + [
            ev(5.0, track, "fault", "retry_chain",
               attempts=3, retry_added_ms=70.0, lost_attempts=2),
        ]
        tenant = analyze_events(events).tenant("a")
        assert tenant.retries == 2
        assert tenant.retry_backoff_ms == 70.0
        assert tenant.lost_attempts == 2

    def test_truncated_attempt_is_occupancy_not_critical_path(self):
        # A crashed attempt's dispatch (truncated) and its lane span: the
        # span counts in lane busy_ms, never in any request's tiling.
        track = "tenant:a"
        events = [
            ev(0.0, track, "request", "dispatch",
               gate_wait_ms=0.0, latency_ms=3.0, contended=True, truncated=True),
            ev(0.0, "lane:d0:compute", "lane", "compute",
               dur=3.0, tenant="a", wait_ms=0.0, jobs=1),
        ] + contended_request("a", 10.0, 4.0,
                              spans=[(0.0, 4.0, "d0", "compute", 0.0)])
        report = analyze_events(events)
        assert report.truncated_attempts == 1
        (request,) = report.requests
        assert request.by_label == {"compute": 4.0}
        (lane,) = report.lanes
        assert lane.busy_ms == 7.0  # both spans occupy the lane...
        assert lane.critical_ms == 4.0  # ...only the served one is critical
        assert report.tenant("a").lost_attempt_ms == 3.0

    def test_bottleneck_ranking_orders_by_critical_ms(self):
        events = contended_request(
            "a", 0.0, 10.0,
            spans=[(0.0, 7.0, "d1", "compute", 0.0), (7.0, 3.0, "d0", "send", 0.0)],
        )
        report = analyze_events(events)
        assert [lane.lane for lane in report.lanes] == [
            "lane:d1:compute", "lane:d0:send"
        ]
        assert report.bottleneck == "lane:d1:compute"
        assert report.lanes[0].share == 0.7
        assert report.lanes[1].share == pytest.approx(0.3)

    def test_unknown_tenant_raises_keyerror(self):
        report = analyze_events(contended_request("a", 0.0, 1.0))
        with pytest.raises(KeyError):
            report.tenant("nope")


class TestErrorPaths:
    def test_mismatched_queue_serve_counts_raise(self):
        track = "tenant:a"
        events = [
            ev(0.0, track, "request", "queue", dur=0.0),
            ev(0.0, track, "request", "queue", dur=0.0),
            ev(0.0, track, "request", "serve", dur=1.0, latency_ms=1.0),
        ]
        with pytest.raises(AnalysisError, match="queue spans"):
            analyze_events(events)

    def test_empty_stream_is_an_empty_report(self):
        report = analyze_events([])
        assert report.num_requests == 0
        assert report.exact
        assert report.bottleneck == ""
        assert report.lines() == ["truncated_attempts 0"]


@pytest.fixture(scope="module")
def contended_run():
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70)])
    network = NetworkModel.constant_from_devices(devices)
    tenants = [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=2.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            slo=SLO(deadline_ms=60.0),
        ),
    ]
    policy = ClusterPolicy(discipline="wfq", max_inflight=2)
    tracer = Tracer()
    report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants, duration_s=2.0, policy=policy, tracer=tracer
    )
    return report, tracer


class TestEndToEnd:
    def test_every_request_attributes_exactly(self, contended_run):
        report, tracer = contended_run
        analysis = analyze_serving(report, tracer)
        assert analysis.num_requests == report.total_completed
        analysis.check_exact()
        assert analysis.exact

    def test_rollups_agree_with_the_committed_report(self, contended_run):
        report, tracer = contended_run
        analysis = analyze_serving(report, tracer)
        for tenant in report.tenants:
            rollup = analysis.tenant(tenant.name)
            assert rollup.requests == tenant.num_completed
            assert rollup.latency_ms == pytest.approx(float(tenant.latency_ms.sum()))
            assert rollup.response_ms == pytest.approx(float(tenant.response_ms.sum()))

    def test_report_only_analysis_is_service_only_but_exact(self, contended_run):
        report, _ = contended_run
        analysis = analyze_serving(report)  # no tracer: derived trace only
        assert analysis.exact
        assert analysis.lanes == []
        assert all(r.segments[0].label == "service" for r in analysis.requests)

    def test_mismatched_report_and_trace_raise(self, contended_run):
        report, tracer = contended_run
        other = Tracer()
        # A self-consistent one-request trace for alpha — but the report
        # committed more, so the cross-check must refuse the pairing.
        other.instant(0.0, "tenant:alpha", "request", "queue")
        other.span(0.0, 1.0, "tenant:alpha", "request", "serve", latency_ms=1.0)
        with pytest.raises(AnalysisError, match="different runs"):
            analyze_serving(report, other)

    def test_analyze_trace_equals_analyze_serving(self, contended_run):
        report, tracer = contended_run
        assert analyze_trace(tracer).lines() == analyze_serving(report, tracer).lines()

    def test_to_dict_is_json_serialisable(self, contended_run):
        report, tracer = contended_run
        payload = analyze_serving(report, tracer).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["exact"] is True
        assert payload["bottleneck"].startswith("lane:")
