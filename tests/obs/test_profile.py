"""Profiler unit tests: sections, counters, the null fast path."""

from __future__ import annotations

from repro.obs import NULL_PROFILER, NullProfiler, Profiler


class TestProfiler:
    def test_section_accumulates_calls_and_time(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.section("work"):
                pass
        snap = profiler.snapshot()
        assert snap["sections"]["work"]["calls"] == 3
        assert snap["sections"]["work"]["total_s"] >= 0.0

    def test_add_merges_premeasured_time(self):
        profiler = Profiler()
        profiler.add("walk", 0.5)
        profiler.add("walk", 0.25, calls=2)
        assert profiler.snapshot()["sections"]["walk"] == {
            "calls": 3,
            "total_s": 0.75,
        }

    def test_counters_accumulate(self):
        profiler = Profiler()
        profiler.count("hits")
        profiler.count("hits", 4)
        assert profiler.snapshot()["counters"] == {"hits": 5}

    def test_section_survives_exceptions(self):
        profiler = Profiler()
        try:
            with profiler.section("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert profiler.snapshot()["sections"]["boom"]["calls"] == 1

    def test_format_table_mentions_everything(self):
        profiler = Profiler()
        profiler.add("walk", 0.5)
        profiler.count("hits", 2)
        table = profiler.format_table()
        assert "walk" in table and "hits" in table
        assert "excluded from parity" in table

    def test_format_table_empty(self):
        assert "no instrumented work" in Profiler().format_table()


class TestNullProfiler:
    def test_every_hook_is_a_noop(self):
        with NULL_PROFILER.section("x"):
            pass
        NULL_PROFILER.add("x", 1.0)
        NULL_PROFILER.count("x")
        assert NULL_PROFILER.snapshot() == {"sections": {}, "counters": {}}
        assert not NULL_PROFILER.enabled

    def test_is_a_profiler(self):
        assert isinstance(NULL_PROFILER, Profiler)
        assert isinstance(NULL_PROFILER, NullProfiler)
