"""SLO burn-rate monitor unit tests: burn math, state machine, shed plan.

The monitor is a pure function of the committed report, so these tests
drive it through fake reports exposing exactly the surface it reads
(mirroring ``tests/serving/test_control.py``); end-to-end byte-parity of
the timeline across engines lives in
``tests/serving/test_analysis_parity.py``.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    FLEET_PRESSURE_RULE,
    AlertEvent,
    AlertTimeline,
    BurnRateRule,
    SLOMonitor,
    _MissStream,
    shed_restore_plan,
)
from repro.runtime.faults import DegradationPolicy

RULE = BurnRateRule("burn", fast_window_s=1.0, slow_window_s=2.0, threshold=2.0)


def fake_report(completions, *, target=0.1, denied=(), abandoned=(), shed=(),
                fleet=None, name="a", start_s=0.0):
    """The minimal report surface the monitor (and its metrics pass) reads.

    ``completions`` is a list of ``(t_s, missed)`` pairs.
    """
    times = np.asarray([t for t, _ in completions], dtype=float)
    missed = np.asarray([m for _, m in completions], dtype=bool)
    n = len(completions)
    tenant = SimpleNamespace(
        name=name,
        slo=SimpleNamespace(deadline_ms=100.0, target_miss_rate=target),
        completion_s=times,
        deadline_missed=missed,
        denied_times_s=np.asarray(denied, dtype=float),
        abandoned_times_s=np.asarray(abandoned, dtype=float),
        shed_times_s=np.asarray(shed, dtype=float),
        num_arrivals=n,
        num_completed=n,
        num_rejected=0,
        num_denied=len(denied),
        num_shed=len(shed),
        num_abandoned=len(abandoned),
        num_retried=0,
        response_ms=times * 0.0 + 50.0,
        latency_ms=times * 0.0 + 50.0,
        max_queue_depth=1,
    )
    return SimpleNamespace(
        start_s=start_s,
        tenants=[tenant],
        fleet=fleet,
        faults=None,
        epochs=1,
        cache_hits=0,
        speculated=0,
        total_completed=n,
        throughput_rps=1.0,
        deadline_miss_rate=float(missed.mean()) if n else 0.0,
    )


def fake_fleet(utilizations, window_ms=1000.0):
    series = SimpleNamespace(
        num_windows=len(utilizations),
        window_ms=window_ms,
        mean_utilization=lambda role: np.asarray(utilizations, dtype=float),
    )
    return SimpleNamespace(series=series, gate_wait_ms=0.0, contended_requests=0)


class TestRuleValidation:
    def test_fast_window_must_not_exceed_slow(self):
        with pytest.raises(ValueError, match="must not exceed"):
            BurnRateRule("r", 10.0, 5.0, 1.0)

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(fast_window_s=0.0),
        dict(slow_window_s=-1.0),
        dict(threshold=0.0),
        dict(severity="email"),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        base = dict(name="r", fast_window_s=1.0, slow_window_s=2.0, threshold=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            BurnRateRule(**base)

    def test_monitor_rejects_bad_rule_sets(self):
        with pytest.raises(ValueError, match="at least one"):
            SLOMonitor(rules=())
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor(rules=(RULE, RULE))
        with pytest.raises(ValueError, match="reserved"):
            SLOMonitor(rules=(BurnRateRule(FLEET_PRESSURE_RULE, 1.0, 2.0, 1.0),))
        with pytest.raises(ValueError):
            SLOMonitor(tick_s=0.0)
        with pytest.raises(ValueError):
            SLOMonitor(default_target=0.0)

    def test_default_rules_are_the_fast_slow_ladder(self):
        fast, slow = DEFAULT_BURN_RULES
        assert fast.severity == "page" and slow.severity == "ticket"
        assert fast.fast_window_s < slow.fast_window_s


class TestBurnMath:
    def test_burn_is_window_miss_fraction_over_target(self):
        stream = _MissStream([(0.5, 1), (1.0, 0), (1.5, 1), (2.0, 0)], target=0.1)
        # Window (1, 2]: 2 samples, 1 bad -> 0.5 / 0.1 = 5.
        assert stream.burn(2.0, 1.0) == 5.0
        # Window (0, 2]: 4 samples, 2 bad -> 5 as well.
        assert stream.burn(2.0, 2.0) == 5.0
        # Window (2, 3]: empty -> 0.
        assert stream.burn(3.0, 1.0) == 0.0

    def test_window_is_left_open_right_closed(self):
        stream = _MissStream([(1.0, 1)], target=0.5)
        assert stream.burn(1.0, 1.0) == 2.0  # sample at t is included
        assert stream.burn(2.0, 1.0) == 0.0  # sample exactly at t - w: excluded
        assert stream.burn(1.9, 1.0) == 2.0  # still inside the trailing window


class TestStateMachine:
    def test_miss_burst_fires_then_resolves(self):
        # All four completions in (0, 1] missed; clean afterwards.
        completions = [(0.2, 1), (0.4, 1), (0.6, 1), (0.8, 1),
                       (2.5, 0), (3.0, 0), (3.5, 0)]
        timeline = SLOMonitor(rules=(RULE,)).evaluate(fake_report(completions))
        states = [(e.t_s, e.state) for e in timeline.events]
        assert states == [(1.0, "firing"), (2.0, "resolved")]
        firing = timeline.events[0]
        assert firing.scope == "tenant:a"
        assert firing.fast_burn == 10.0  # 4/4 missed over target 0.1
        assert timeline.firing_at_end == []

    def test_slow_window_guards_against_a_blip(self):
        # One miss among many good completions: fast spikes, slow stays low.
        completions = [(0.1 * k, 0) for k in range(1, 60)] + [(6.05, 1)]
        rule = BurnRateRule("burn", 0.2, 6.0, threshold=2.0)
        timeline = SLOMonitor(rules=(rule,), default_target=0.5).evaluate(
            fake_report(completions, target=0.5)
        )
        assert timeline.events == []

    def test_denials_abandons_and_sheds_burn_budget(self):
        for kwargs in (dict(denied=[0.5]), dict(abandoned=[0.5]), dict(shed=[0.5])):
            report = fake_report([(0.4, 0)], target=0.1, **kwargs)
            timeline = SLOMonitor(rules=(RULE,)).evaluate(report)
            assert timeline.num_firing == 1, kwargs

    def test_open_alert_closes_at_end_in_firing_intervals(self):
        completions = [(0.5, 1), (1.5, 1)]
        timeline = SLOMonitor(rules=(RULE,)).evaluate(fake_report(completions))
        assert timeline.firing_at_end == [("tenant:a", "burn")]
        (interval,) = timeline.firing_intervals()
        assert (interval.start_s, interval.end_s) == (1.0, timeline.end_s)

    def test_fleet_pressure_rule_follows_window_edges(self):
        fleet = fake_fleet([0.95, 0.95, 0.5], window_ms=1000.0)
        timeline = SLOMonitor(rules=(RULE,), utilization_threshold=0.9).evaluate(
            fake_report([(0.5, 0)], fleet=fleet)
        )
        fleet_events = [e for e in timeline.events if e.scope == "fleet"]
        assert [(e.t_s, e.state) for e in fleet_events] == [
            (1.0, "firing"), (3.0, "resolved")
        ]
        assert all(e.rule == FLEET_PRESSURE_RULE for e in fleet_events)

    def test_timeline_is_deterministic_and_serialisable(self):
        completions = [(0.2, 1), (0.7, 1), (2.5, 0)]
        monitor = SLOMonitor(rules=(RULE,))
        a = monitor.evaluate(fake_report(completions))
        b = monitor.evaluate(fake_report(completions))
        assert a.lines() == b.lines()
        payload = a.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["num_events"] == len(a.events)

    def test_transitions_land_on_the_trace(self):
        from repro.obs import Tracer

        tracer = Tracer()
        SLOMonitor(rules=(RULE,)).evaluate(
            fake_report([(0.5, 1), (0.8, 1)]), tracer=tracer
        )
        alerts = [e for e in tracer.events if e.track == "control:slo"]
        assert alerts and all(e.kind == "alert" for e in alerts)

    def test_tenant_summary_has_quantiles_and_budget(self):
        timeline = SLOMonitor(rules=(RULE,)).evaluate(
            fake_report([(0.5, 1), (1.0, 0)])
        )
        summary = timeline.tenant_summary["a"]
        assert summary["served"] == 2 and summary["bad"] == 1
        assert summary["target_miss_rate"] == 0.1
        # Responses all 50 ms -> every quantile estimate is 50 exactly
        # (observations sit on the default bucket bound).
        assert summary["p95_ms"] == 50.0 and summary["p99_ms"] == 50.0


def _timeline(events, end_s=10.0):
    return AlertTimeline(
        rules=(RULE,), tick_s=1.0, start_s=0.0, end_s=end_s,
        events=events, tenant_summary={},
    )


def _page(t_s, state, scope="tenant:a"):
    return AlertEvent(t_s, scope, "burn", "page", state, 3.0, 3.0)


class TestShedRestorePlan:
    POLICY = DegradationPolicy(min_live_fraction=0.5)

    def test_victims_follow_the_degradation_shed_order(self):
        timeline = _timeline([_page(2.0, "firing"), _page(5.0, "resolved")])
        (window,) = shed_restore_plan(
            timeline, weights=[3.0, 1.0, 2.0, 4.0], policy=self.POLICY
        )
        assert (window.start_s, window.end_s) == (2.0, 5.0)
        assert window.tenants == (1,)  # lowest weight, same order as churn shed

    def test_overlapping_pages_merge_into_one_window(self):
        timeline = _timeline([
            _page(1.0, "firing"), _page(4.0, "resolved"),
            _page(3.0, "firing", scope="tenant:b"),
            _page(6.0, "resolved", scope="tenant:b"),
        ])
        (window,) = shed_restore_plan(timeline, [1.0, 2.0], self.POLICY)
        assert (window.start_s, window.end_s) == (1.0, 6.0)

    def test_ticket_severity_never_sheds(self):
        ticket = AlertEvent(1.0, "tenant:a", "slow", "ticket", "firing", 1.0, 1.0)
        assert shed_restore_plan(_timeline([ticket]), [1.0, 2.0], self.POLICY) == []

    def test_single_tenant_is_never_shed(self):
        timeline = _timeline([_page(1.0, "firing")])
        assert shed_restore_plan(timeline, [1.0], self.POLICY) == []

    def test_shed_fraction_validated(self):
        with pytest.raises(ValueError):
            shed_restore_plan(_timeline([]), [1.0, 2.0], self.POLICY, shed_fraction=0.0)
        with pytest.raises(ValueError):
            shed_restore_plan(_timeline([]), [1.0, 2.0], self.POLICY, shed_fraction=1.5)

    def test_shed_order_is_stable_on_ties(self):
        assert DegradationPolicy(min_live_fraction=0.5).shed_order(
            [2.0, 1.0, 1.0]
        ) == (1, 2, 0)
