"""Tests for repro.utils (rng, units, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import as_rng, derive_seed, spawn_rng
from repro.utils.units import (
    FP16_BYTES,
    bytes_per_second,
    bytes_to_megabytes,
    megabits_to_bytes,
    ms_to_s,
    s_to_ms,
)
from repro.utils.validation import (
    check_fraction,
    check_monotone_non_decreasing,
    check_non_negative,
    check_positive,
    check_probability_vector,
)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_as_rng_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        rng = as_rng(seq)
        assert isinstance(rng, np.random.Generator)

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rng_children_are_independent(self):
        parent = as_rng(0)
        c1, c2 = spawn_rng(parent, 2)
        assert not np.array_equal(c1.integers(0, 1 << 30, 10), c2.integers(0, 1 << 30, 10))

    def test_spawn_rng_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), 0)

    def test_spawn_is_reproducible(self):
        a = spawn_rng(as_rng(5), 3)[2].integers(0, 100, 4)
        b = spawn_rng(as_rng(5), 3)[2].integers(0, 100, 4)
        assert np.array_equal(a, b)

    def test_derive_seed_in_range(self):
        seed = derive_seed(as_rng(0))
        assert 0 <= seed < 2**31


class TestUnits:
    def test_fp16_is_two_bytes(self):
        assert FP16_BYTES == 2

    def test_bytes_per_second(self):
        assert bytes_per_second(8) == pytest.approx(1e6)

    def test_bytes_per_second_rejects_negative(self):
        with pytest.raises(ValueError):
            bytes_per_second(-1)

    def test_megabits_to_bytes(self):
        assert megabits_to_bytes(8) == pytest.approx(1e6)

    def test_ms_s_roundtrip(self):
        assert s_to_ms(ms_to_s(123.0)) == pytest.approx(123.0)

    def test_bytes_to_megabytes(self):
        assert bytes_to_megabytes(2_000_000) == pytest.approx(2.0)

    @given(st.floats(min_value=0.001, max_value=1e5))
    def test_bandwidth_conversion_positive(self, mbps):
        assert bytes_per_second(mbps) > 0


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(3, "x") == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")

    def test_probability_vector_valid(self):
        out = check_probability_vector([0.25, 0.75], "p")
        assert out.sum() == pytest.approx(1.0)

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.5, 1.5], "p")

    def test_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.3, 0.3], "p")

    def test_probability_vector_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_monotone_accepts_sorted(self):
        check_monotone_non_decreasing([1, 2, 2, 5], "m")

    def test_monotone_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_monotone_non_decreasing([3, 1], "m")
