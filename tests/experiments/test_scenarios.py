"""Tests for the scenario catalogue (Tables I-III), the procedural
large-scale generator and the collision-safe registry."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import (
    TYPE_POOLS,
    ScenarioCatalog,
    ScenarioRegistry,
    generate_scenario,
    override_generator_spec,
    parse_generator_spec,
    resolve_scenario,
)
from repro.network.topology import NetworkModel


class TestTable1:
    def test_groups_and_compositions(self):
        groups = ScenarioCatalog.table1_groups(200.0)
        assert set(groups) == {"DA", "DB", "DC"}
        assert groups["DA"].device_types == ["tx2", "tx2", "nano", "nano"]
        assert groups["DB"].device_types == ["xavier", "xavier", "nano", "nano"]
        assert groups["DC"].device_types == ["xavier", "tx2", "nano", "pi3"]

    def test_bandwidth_applied(self):
        groups = ScenarioCatalog.table1_groups(50.0)
        assert all(b == 50.0 for b in groups["DB"].bandwidths_mbps)


class TestTable2:
    def test_groups_and_bandwidths(self):
        groups = ScenarioCatalog.table2_groups("nano")
        assert set(groups) == {"NA", "NB", "NC", "ND"}
        assert sorted(groups["NA"].bandwidths_mbps) == [50, 50, 200, 200]
        assert sorted(groups["ND"].bandwidths_mbps) == [50, 100, 200, 300]

    def test_device_type_applied(self):
        groups = ScenarioCatalog.table2_groups("xavier")
        assert all(t == "xavier" for t in groups["NC"].device_types)


class TestTable3:
    def test_sixteen_devices_each(self):
        groups = ScenarioCatalog.table3_groups()
        assert set(groups) == {"LA", "LB", "LC", "LD"}
        for scenario in groups.values():
            assert scenario.num_devices == 16

    def test_lb_pairs_fast_device_with_slow_link(self):
        lb = ScenarioCatalog.table3_groups()["LB"]
        pairs = set(lb.device_specs)
        assert ("xavier", 50) in pairs and ("pi3", 300) in pairs

    def test_ld_pairs_fast_device_with_fast_link(self):
        ld = ScenarioCatalog.table3_groups()["LD"]
        pairs = set(ld.device_specs)
        assert ("xavier", 300) in pairs and ("pi3", 50) in pairs


class TestScenarioHelpers:
    def test_with_bandwidth_renames(self):
        scenario = ScenarioCatalog.table1_groups(200.0)["DB"].with_bandwidth(50.0)
        assert all(b == 50.0 for b in scenario.bandwidths_mbps)
        assert "DB" in scenario.name and "50" in scenario.name

    def test_with_device_type(self):
        scenario = ScenarioCatalog.table2_groups("nano")["NA"].with_device_type("tx2")
        assert all(t == "tx2" for t in scenario.device_types)

    def test_build_constant(self):
        devices, network = ScenarioCatalog.table1_groups(100.0)["DA"].build()
        assert len(devices) == 4
        assert isinstance(network, NetworkModel)
        assert network.nominal_mbps(0) == 100.0

    def test_build_dynamic_trace_kind(self):
        scenario = ScenarioCatalog.dynamic_nano()
        devices, network = scenario.build(seed=0)
        assert scenario.trace_kind == "dynamic"
        assert len(devices) == 4

    def test_homogeneous(self):
        scenario = ScenarioCatalog.homogeneous("tx2", 300.0, count=3)
        assert scenario.device_types == ["tx2"] * 3

    def test_all_named_unique(self):
        catalog = ScenarioCatalog.all_named()
        assert len(catalog) >= 14
        assert "DB" in catalog and "LD" in catalog and "NA-xavier" in catalog


class TestGenerator:
    def test_deterministic_for_a_seed(self):
        assert generate_scenario(32, seed=7) == generate_scenario(32, seed=7)
        assert generate_scenario(32, seed=7) != generate_scenario(32, seed=8)

    def test_fleet_size_and_type_pool(self):
        scenario = generate_scenario(48, seed=1, heterogeneity="gpu")
        assert scenario.num_devices == 48
        assert set(scenario.device_types) <= set(TYPE_POOLS["gpu"])

    def test_bandwidth_range_respected(self):
        scenario = generate_scenario(64, seed=2, bandwidth_mbps=(50.0, 300.0))
        assert all(50.0 <= b <= 300.0 for b in scenario.bandwidths_mbps)
        # A range should actually vary across a 64-device fleet.
        assert len(set(scenario.bandwidths_mbps)) > 1

    def test_fixed_bandwidth(self):
        scenario = generate_scenario(8, seed=3, bandwidth_mbps=200.0)
        assert scenario.bandwidths_mbps == [200.0] * 8

    def test_rounding_cannot_escape_narrow_ranges(self):
        """Regression: whole-Mbps rounding is clamped back into the range."""
        narrow = generate_scenario(16, seed=3, bandwidth_mbps=(0.2, 0.4))
        assert all(0.2 <= b <= 0.4 for b in narrow.bandwidths_mbps)
        fractional = generate_scenario(64, seed=3, bandwidth_mbps=(50.4, 99.6))
        assert all(50.4 <= b <= 99.6 for b in fractional.bandwidths_mbps)

    def test_single_type_and_plus_list(self):
        assert set(generate_scenario(8, heterogeneity="nano").device_types) == {"nano"}
        mixed = generate_scenario(32, seed=4, heterogeneity="nano+xavier")
        assert set(mixed.device_types) <= {"nano", "xavier"}

    def test_trace_kind_flows_into_build(self):
        scenario = generate_scenario(4, seed=5, trace_kind="dynamic")
        assert scenario.trace_kind == "dynamic"
        devices, network = scenario.build(seed=5)
        assert len(devices) == 4
        assert isinstance(network, NetworkModel)

    def test_name_encodes_spec(self):
        scenario = generate_scenario(32, seed=7)
        assert "32d" in scenario.name and "s7" in scenario.name

    def test_validation(self):
        with pytest.raises(ValueError, match="num_devices"):
            generate_scenario(0)
        with pytest.raises(ValueError, match="unknown device type"):
            generate_scenario(4, heterogeneity="cray")
        with pytest.raises(ValueError, match="inverted"):
            generate_scenario(4, bandwidth_mbps=(300.0, 50.0))
        with pytest.raises(ValueError, match="positive"):
            generate_scenario(4, bandwidth_mbps=0.0)


class TestGeneratorSpecGrammar:
    def test_full_spec(self):
        scenario = parse_generator_spec("gen:n=32,seed=7,bw=50-300,types=mixed,trace=constant")
        assert scenario == generate_scenario(32, seed=7)

    def test_defaults(self):
        assert parse_generator_spec("gen:") == generate_scenario()

    def test_fixed_bandwidth_and_type(self):
        scenario = parse_generator_spec("gen:n=4,bw=200,types=nano")
        assert scenario.device_specs == (("nano", 200.0),) * 4

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown generator option"):
            parse_generator_spec("gen:bogus=1")
        with pytest.raises(ValueError, match="key=value"):
            parse_generator_spec("gen:n")
        with pytest.raises(ValueError, match="malformed bandwidth"):
            parse_generator_spec("gen:bw=50-")
        with pytest.raises(ValueError, match="must start with"):
            parse_generator_spec("n=4")

    def test_resolve_scenario_both_forms(self):
        assert resolve_scenario("DB").name == "DB"
        assert resolve_scenario("gen:n=4").num_devices == 4
        with pytest.raises(KeyError, match="unknown scenario"):
            resolve_scenario("ZZ")


class TestScenarioRegistry:
    def test_register_and_get(self):
        registry = ScenarioRegistry()
        scenario = registry.register(generate_scenario(4, seed=0))
        assert registry.get(scenario.name) == scenario
        assert scenario.name in registry
        assert len(registry) == 1

    def test_equal_reregistration_is_idempotent(self):
        registry = ScenarioRegistry()
        registry.register(generate_scenario(4, seed=0))
        registry.register(generate_scenario(4, seed=0))
        assert len(registry) == 1

    def test_collision_from_repeated_derivations_rejected(self):
        """Regression: with_bandwidth/homogeneous derivations can silently
        collide on a name while describing different fleets."""
        registry = ScenarioRegistry()
        registry.register(ScenarioCatalog.homogeneous(count=4))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(ScenarioCatalog.homogeneous(count=8))

    def test_with_bandwidth_derivations_share_name(self):
        """The collision source: deriving the same target bandwidth from two
        different base groups produces the same derived name."""
        a = ScenarioCatalog.table1_groups(200.0)["DB"].with_bandwidth(50.0)
        b = ScenarioCatalog.table1_groups(100.0)["DB"].with_bandwidth(50.0)
        assert a.name == b.name  # the hazard the registry guards against
        registry = ScenarioRegistry()
        registry.register(a)
        registry.register(b)  # equal content: idempotent, not a collision
        assert len(registry) == 1

    def test_uniquify_renames(self):
        registry = ScenarioRegistry()
        registry.register(ScenarioCatalog.homogeneous(count=4))
        renamed = registry.register(ScenarioCatalog.homogeneous(count=8), uniquify=True)
        assert renamed.name.endswith("-2")
        assert registry.get(renamed.name).num_devices == 8
        # Uniquifying the same scenario again reuses its assigned name.
        again = registry.register(ScenarioCatalog.homogeneous(count=8), uniquify=True)
        assert again.name == renamed.name
        assert len(registry) == 2

    def test_register_under_explicit_name(self):
        registry = ScenarioRegistry()
        scenario = registry.register(generate_scenario(4, seed=0), name="fleet-a")
        assert scenario.name == "fleet-a"
        assert registry.get("fleet-a").num_devices == 4

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ScenarioRegistry().get("nope")

    def test_as_dict_is_a_copy(self):
        registry = ScenarioRegistry()
        registry.register(generate_scenario(4, seed=0))
        snapshot = registry.as_dict()
        snapshot.clear()
        assert len(registry) == 1


class TestOverrideGeneratorSpec:
    def test_overrides_fleet_size(self):
        spec = override_generator_spec("gen:n=2,seed=3,types=nano,bw=70", n=5)
        assert parse_generator_spec(spec).num_devices == 5
        # Every other option survives the rewrite.
        base = parse_generator_spec("gen:n=5,seed=3,types=nano,bw=70")
        assert parse_generator_spec(spec).device_specs == base.device_specs

    def test_adds_missing_option(self):
        spec = override_generator_spec("gen:n=4", seed=9)
        assert "seed=9" in spec
        assert parse_generator_spec(spec).num_devices == 4

    def test_canonical_key_order_is_stable(self):
        a = override_generator_spec("gen:bw=70,n=2,seed=3", n=6)
        b = override_generator_spec("gen:seed=3,bw=70,n=2", n=6)
        assert a == b

    def test_unknown_keys_still_rejected_downstream(self):
        spec = override_generator_spec("gen:n=2,bogus=1", n=3)
        with pytest.raises(ValueError):
            parse_generator_spec(spec)

    def test_requires_generator_prefix(self):
        with pytest.raises(ValueError):
            override_generator_spec("DB", n=3)
