"""Tests for the scenario catalogue (Tables I-III)."""

from __future__ import annotations


from repro.experiments.scenarios import ScenarioCatalog
from repro.network.topology import NetworkModel


class TestTable1:
    def test_groups_and_compositions(self):
        groups = ScenarioCatalog.table1_groups(200.0)
        assert set(groups) == {"DA", "DB", "DC"}
        assert groups["DA"].device_types == ["tx2", "tx2", "nano", "nano"]
        assert groups["DB"].device_types == ["xavier", "xavier", "nano", "nano"]
        assert groups["DC"].device_types == ["xavier", "tx2", "nano", "pi3"]

    def test_bandwidth_applied(self):
        groups = ScenarioCatalog.table1_groups(50.0)
        assert all(b == 50.0 for b in groups["DB"].bandwidths_mbps)


class TestTable2:
    def test_groups_and_bandwidths(self):
        groups = ScenarioCatalog.table2_groups("nano")
        assert set(groups) == {"NA", "NB", "NC", "ND"}
        assert sorted(groups["NA"].bandwidths_mbps) == [50, 50, 200, 200]
        assert sorted(groups["ND"].bandwidths_mbps) == [50, 100, 200, 300]

    def test_device_type_applied(self):
        groups = ScenarioCatalog.table2_groups("xavier")
        assert all(t == "xavier" for t in groups["NC"].device_types)


class TestTable3:
    def test_sixteen_devices_each(self):
        groups = ScenarioCatalog.table3_groups()
        assert set(groups) == {"LA", "LB", "LC", "LD"}
        for scenario in groups.values():
            assert scenario.num_devices == 16

    def test_lb_pairs_fast_device_with_slow_link(self):
        lb = ScenarioCatalog.table3_groups()["LB"]
        pairs = set(lb.device_specs)
        assert ("xavier", 50) in pairs and ("pi3", 300) in pairs

    def test_ld_pairs_fast_device_with_fast_link(self):
        ld = ScenarioCatalog.table3_groups()["LD"]
        pairs = set(ld.device_specs)
        assert ("xavier", 300) in pairs and ("pi3", 50) in pairs


class TestScenarioHelpers:
    def test_with_bandwidth_renames(self):
        scenario = ScenarioCatalog.table1_groups(200.0)["DB"].with_bandwidth(50.0)
        assert all(b == 50.0 for b in scenario.bandwidths_mbps)
        assert "DB" in scenario.name and "50" in scenario.name

    def test_with_device_type(self):
        scenario = ScenarioCatalog.table2_groups("nano")["NA"].with_device_type("tx2")
        assert all(t == "tx2" for t in scenario.device_types)

    def test_build_constant(self):
        devices, network = ScenarioCatalog.table1_groups(100.0)["DA"].build()
        assert len(devices) == 4
        assert isinstance(network, NetworkModel)
        assert network.nominal_mbps(0) == 100.0

    def test_build_dynamic_trace_kind(self):
        scenario = ScenarioCatalog.dynamic_nano()
        devices, network = scenario.build(seed=0)
        assert scenario.trace_kind == "dynamic"
        assert len(devices) == 4

    def test_homogeneous(self):
        scenario = ScenarioCatalog.homogeneous("tx2", 300.0, count=3)
        assert scenario.device_types == ["tx2"] * 3

    def test_all_named_unique(self):
        catalog = ScenarioCatalog.all_named()
        assert len(catalog) >= 14
        assert "DB" in catalog and "LD" in catalog and "NA-xavier" in catalog
