"""Tests for the experiment harness (fast configuration)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ALL_METHODS, ExperimentHarness, HarnessConfig
from repro.experiments.scenarios import Scenario


@pytest.fixture()
def harness():
    return ExperimentHarness(HarnessConfig(osds_episodes=5, num_random_splits=5, seed=0))


@pytest.fixture()
def small_scenario():
    return Scenario("duo", (("xavier", 100), ("nano", 100)), "two devices")


class TestHarness:
    def test_run_baseline_method(self, harness, small_scenario):
        result = harness.run("offload", small_scenario, model_name="small_vgg")
        assert result.method == "offload"
        assert result.ips > 0
        assert result.latency_ms == pytest.approx(1000.0 / result.ips)

    def test_unknown_method_rejected(self, harness, small_scenario):
        with pytest.raises(KeyError):
            harness.run("magic", small_scenario, model_name="small_vgg")

    def test_result_caching(self, harness, small_scenario):
        a = harness.run("aofl", small_scenario, model_name="small_vgg")
        b = harness.run("aofl", small_scenario, model_name="small_vgg")
        assert a is b
        c = harness.run("aofl", small_scenario, model_name="small_vgg", use_cache=False)
        assert c is not a

    def test_compare_and_speedup(self, harness, small_scenario):
        results = harness.compare(
            small_scenario, methods=("offload", "aofl", "distredge"), model_name="small_vgg"
        )
        assert set(results) == {"offload", "aofl", "distredge"}
        speedup = harness.speedup_over_best_baseline(results)
        assert speedup > 0.5
        table = harness.ips_table(results)
        assert table["distredge"] == pytest.approx(results["distredge"].ips)

    def test_speedup_requires_distredge(self, harness, small_scenario):
        results = harness.compare(small_scenario, methods=("offload",), model_name="small_vgg")
        with pytest.raises(KeyError):
            harness.speedup_over_best_baseline(results)

    def test_streaming_mode(self, small_scenario):
        harness = ExperimentHarness(
            HarnessConfig(osds_episodes=3, num_random_splits=4, num_images=5, seed=0)
        )
        result = harness.run("offload", small_scenario, model_name="small_vgg")
        assert result.ips > 0

    def test_profiles_mode(self, small_scenario):
        harness = ExperimentHarness(
            HarnessConfig(
                osds_episodes=3,
                num_random_splits=4,
                use_profiles=True,
                profile_heights_per_layer=6,
                seed=0,
            )
        )
        result = harness.run("aofl", small_scenario, model_name="small_vgg")
        assert result.ips > 0

    def test_osds_config_sigma_scales_with_cluster(self):
        config = HarnessConfig()
        assert config.osds_config(4).sigma_squared == pytest.approx(0.1)
        assert config.osds_config(16).sigma_squared == pytest.approx(1.0)

    def test_all_methods_constant(self):
        assert "distredge" in ALL_METHODS and "offload" in ALL_METHODS
        assert len(ALL_METHODS) == 8
