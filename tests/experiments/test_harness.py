"""Tests for the experiment harness (fast configuration)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ALL_METHODS, ExperimentHarness, HarnessConfig
from repro.experiments.scenarios import Scenario


@pytest.fixture()
def harness():
    return ExperimentHarness(HarnessConfig(osds_episodes=5, num_random_splits=5, seed=0))


@pytest.fixture()
def small_scenario():
    return Scenario("duo", (("xavier", 100), ("nano", 100)), "two devices")


class TestHarness:
    def test_run_baseline_method(self, harness, small_scenario):
        result = harness.run("offload", small_scenario, model_name="small_vgg")
        assert result.method == "offload"
        assert result.ips > 0
        assert result.latency_ms == pytest.approx(1000.0 / result.ips)

    def test_unknown_method_rejected(self, harness, small_scenario):
        with pytest.raises(KeyError):
            harness.run("magic", small_scenario, model_name="small_vgg")

    def test_result_caching(self, harness, small_scenario):
        a = harness.run("aofl", small_scenario, model_name="small_vgg")
        b = harness.run("aofl", small_scenario, model_name="small_vgg")
        assert a is b
        c = harness.run("aofl", small_scenario, model_name="small_vgg", use_cache=False)
        assert c is not a

    def test_compare_and_speedup(self, harness, small_scenario):
        results = harness.compare(
            small_scenario, methods=("offload", "aofl", "distredge"), model_name="small_vgg"
        )
        assert set(results) == {"offload", "aofl", "distredge"}
        speedup = harness.speedup_over_best_baseline(results)
        assert speedup > 0.5
        table = harness.ips_table(results)
        assert table["distredge"] == pytest.approx(results["distredge"].ips)

    def test_speedup_requires_distredge(self, harness, small_scenario):
        results = harness.compare(small_scenario, methods=("offload",), model_name="small_vgg")
        with pytest.raises(KeyError):
            harness.speedup_over_best_baseline(results)

    def test_streaming_mode(self, small_scenario):
        harness = ExperimentHarness(
            HarnessConfig(osds_episodes=3, num_random_splits=4, num_images=5, seed=0)
        )
        result = harness.run("offload", small_scenario, model_name="small_vgg")
        assert result.ips > 0

    def test_profiles_mode(self, small_scenario):
        harness = ExperimentHarness(
            HarnessConfig(
                osds_episodes=3,
                num_random_splits=4,
                use_profiles=True,
                profile_heights_per_layer=6,
                seed=0,
            )
        )
        result = harness.run("aofl", small_scenario, model_name="small_vgg")
        assert result.ips > 0

    def test_workers_knob_shards_compare_batches(self, small_scenario):
        """workers >= 2 evaluates compare()'s plans as one batch through a
        sharded pool per scenario, with numbers identical to the in-process
        path."""
        from repro.runtime.shard import ShardedPlanEvaluator

        # All eight methods: an 8-plan batch clears the sharded evaluator's
        # default per-worker minimum (4), so shards genuinely dispatch to
        # worker processes and the serialization round-trip is exercised.
        methods = list(ALL_METHODS)
        inline = ExperimentHarness(HarnessConfig(osds_episodes=5, num_random_splits=5))
        results_inline = inline.compare(small_scenario, methods, model_name="small_vgg")
        with ExperimentHarness(
            HarnessConfig(osds_episodes=5, num_random_splits=5, workers=2)
        ) as sharded:
            results_sharded = sharded.compare(small_scenario, methods, model_name="small_vgg")
            # The scenario's pool was created, actually started, and is
            # reused across calls.
            assert isinstance(sharded._sharded[small_scenario], ShardedPlanEvaluator)
            assert sharded._sharded[small_scenario]._executor is not None
            evaluator = sharded.evaluator_for(*small_scenario.build(), small_scenario)
            assert evaluator is sharded._sharded[small_scenario]
            for method in methods:
                assert results_sharded[method].ips == results_inline[method].ips
                assert results_sharded[method].latency_ms == results_inline[method].latency_ms
            # Results are cached: a repeat compare plans nothing new.
            again = sharded.compare(small_scenario, methods, model_name="small_vgg")
            assert all(again[m] is results_sharded[m] for m in methods)
        assert sharded._sharded == {}  # close() tore the pools down

    def test_sharded_pool_cache_distinguishes_same_named_scenarios(self):
        """Two different scenarios sharing a name must not share a pool."""
        a = Scenario("twin", (("nano", 100), ("nano", 100)), "two nanos")
        b = Scenario("twin", (("nano", 100), ("nano", 100), ("nano", 100)), "three nanos")
        with ExperimentHarness(
            HarnessConfig(osds_episodes=5, num_random_splits=5, workers=2)
        ) as harness:
            eval_a = harness.evaluator_for(*a.build(), a)
            eval_b = harness.evaluator_for(*b.build(), b)
            assert eval_a is not eval_b
            assert len(eval_a.devices) == 2
            assert len(eval_b.devices) == 3

    def test_sharded_pool_count_is_bounded(self):
        """Visiting many scenarios must not pin unbounded worker pools."""
        from repro.experiments.scenarios import generate_scenario

        with ExperimentHarness(
            HarnessConfig(osds_episodes=5, num_random_splits=5, workers=2)
        ) as harness:
            scenarios = [generate_scenario(2, seed=s, bandwidth_mbps=100.0) for s in range(6)]
            for scenario in scenarios:
                harness.evaluator_for(*scenario.build(), scenario)
            assert len(harness._sharded) == ExperimentHarness.MAX_SHARDED_POOLS
            # The most recently used scenarios survive, oldest were evicted.
            assert scenarios[-1] in harness._sharded
            assert scenarios[0] not in harness._sharded

    def test_result_cache_distinguishes_same_named_scenarios(self, harness):
        """Cached MethodResults are keyed on the scenario itself, so a
        same-named but different fleet never returns the other's numbers."""
        a = Scenario("twin", (("nano", 100), ("nano", 100)), "two nanos")
        b = Scenario("twin", (("xavier", 300), ("xavier", 300)), "two xaviers")
        result_a = harness.run("offload", a, model_name="small_vgg")
        result_b = harness.run("offload", b, model_name="small_vgg")
        assert result_a is not result_b
        assert result_a.ips != result_b.ips

    def test_serve_scenario_one_tenant_per_method(self, harness, small_scenario):
        report = harness.serve_scenario(
            small_scenario,
            methods=("coedge", "offload"),
            model_name="small_vgg",
            traffic="traffic:poisson,rate=3,seed=1",
            deadline_ms=500.0,
            duration_s=5.0,
        )
        assert [t.name for t in report.tenants] == ["coedge", "offload"]
        assert report.mode == "batched"
        assert report.total_completed > 0
        for tenant in report.tenants:
            assert tenant.slo is not None and tenant.slo.deadline_ms == 500.0
        # The report formats as a table (used by the serve CLI).
        from repro.experiments.reporting import format_serving_table

        table = format_serving_table(report, title="serve")
        assert "coedge" in table and "TOTAL" in table and "p95_ms" in table

    def test_serve_scenario_broadcast_mismatch_rejected(self, harness, small_scenario):
        with pytest.raises(ValueError, match="broadcast"):
            harness.serve_scenario(
                small_scenario,
                methods=("coedge", "offload"),
                model_name="small_vgg",
                deadline_ms=[100.0, 200.0, 300.0],
                duration_s=1.0,
            )

    def test_osds_config_sigma_scales_with_cluster(self):
        config = HarnessConfig()
        assert config.osds_config(4).sigma_squared == pytest.approx(0.1)
        assert config.osds_config(16).sigma_squared == pytest.approx(1.0)

    def test_all_methods_constant(self):
        assert "distredge" in ALL_METHODS and "offload" in ALL_METHODS
        assert len(ALL_METHODS) == 8


class TestControlPlaneRunners:
    """The harness-side callables the capacity planner / autoscaler consume."""

    GEN = "gen:n=2,seed=3,types=nano,bw=70"

    def _policy(self):
        from repro.serving import ClusterPolicy

        return ClusterPolicy(admission="predictive", on_predicted_miss="reject")

    def _probe_kwargs(self):
        return dict(
            methods=("coedge",),
            model_name="small_vgg",
            traffic="traffic:poisson,rate=150,seed=11",
            deadline_ms=40.0,
            duration_s=2.0,
            policy=self._policy(),
            slots=4,
        )

    def test_probe_runner_resizes_fleet(self, harness):
        probe = harness.capacity_probe_runner(self.GEN, **self._probe_kwargs())
        small = probe(1)
        large = probe(3)
        assert small.fleet.compute_busy_ms.size == 1
        assert large.fleet.compute_busy_ms.size == 3
        assert small.admission == "predictive"

    def test_probe_runner_memo_warm_repeat_is_bit_identical(self, harness):
        from repro.serving import assert_reports_equal

        probe = harness.capacity_probe_runner(self.GEN, **self._probe_kwargs())
        cold = probe(2)
        warm = probe(2)  # replays the shared schedule memo
        assert_reports_equal(cold, warm)

    def test_probe_runner_requires_generator_spec(self, harness):
        with pytest.raises(ValueError, match="gen:"):
            harness.capacity_probe_runner("DB", **self._probe_kwargs())

    def test_window_runner_slices_one_arrival_stream(self, harness):
        """Windows partition the horizon's arrivals exactly once."""
        from repro.serving import ClusterPolicy

        runner = harness.autoscale_window_runner(
            self.GEN,
            window_s=1.0,
            num_windows=3,
            methods=("coedge",),
            model_name="small_vgg",
            traffic="traffic:poisson,rate=60,seed=5",
            deadline_ms=1000.0,
            policy=ClusterPolicy(),
            slots=4,
        )
        from repro.serving import resolve_traffic
        from repro.serving.traffic import PoissonArrivals

        horizon = PoissonArrivals(rate_rps=60.0, seed=5).arrival_times(3.0, 0.0)
        reports = [runner(2, w) for w in range(3)]
        assert sum(r.total_arrivals for r in reports) == len(horizon)
        # Fleet size changes between windows without touching the stream.
        resized = runner(1, 1)
        assert resized.fleet.compute_busy_ms.size == 1
        assert resized.total_arrivals == reports[1].total_arrivals

    def test_window_runner_rejects_bad_window(self, harness):
        runner = harness.autoscale_window_runner(
            self.GEN,
            window_s=1.0,
            num_windows=2,
            methods=("coedge",),
            model_name="small_vgg",
            traffic="traffic:poisson,rate=10,seed=5",
        )
        with pytest.raises(ValueError, match="window"):
            runner(2, 5)
        with pytest.raises(ValueError):
            harness.autoscale_window_runner(
                self.GEN, window_s=0.0, num_windows=2,
            )
