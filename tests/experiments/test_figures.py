"""Tests for the figure-regeneration functions (tiny configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.harness import ExperimentHarness, HarnessConfig
from repro.experiments.reporting import format_ips_table, format_series, speedup_summary
from repro.experiments.scenarios import Scenario


@pytest.fixture()
def harness():
    return ExperimentHarness(HarnessConfig(osds_episodes=4, num_random_splits=4, seed=0))


class TestTraceFigures:
    def test_figure4_levels(self):
        data = figures.figure4(duration_s=600.0)
        assert set(data) == {"50Mbps", "100Mbps", "200Mbps", "300Mbps"}
        for key, stats in data.items():
            nominal = stats["nominal_mbps"]
            assert abs(stats["mean_mbps"] - nominal) / nominal < 0.1

    def test_figure12_dynamic_range(self):
        data = figures.figure12(duration_s=1800.0)
        assert len(data) == 4
        for stats in data.values():
            assert 40 <= stats["min_mbps"] <= stats["max_mbps"] <= 100

    def test_figure14_nonlinear(self):
        data = figures.figure14(device_type="nano", volume_range=(0, 6))
        rows, lat = data["output_rows"], data["latency_ms"]
        assert rows.shape == lat.shape
        assert np.all(np.diff(lat) >= -1e-9)
        # Latency at half the rows is more than half the full latency.
        half_idx = len(rows) // 2
        assert lat[half_idx] > 0.5 * lat[-1] * (rows[half_idx] / rows[-1])


class TestHarnessFigures:
    def test_figure5_small(self, harness):
        envs = {"duo": Scenario("duo-f5", (("xavier", 100), ("nano", 100)))}
        data = figures.figure5(harness, alphas=(0.0, 1.0), environments=envs, model_name="small_vgg")
        assert set(data) == {"duo"}
        assert set(data["duo"]) == {0.0, 1.0}
        assert all(v > 0 for v in data["duo"].values())

    def test_figure6_small(self, harness):
        cases = {"duo": Scenario("duo-f6", (("xavier", 100), ("nano", 100)))}
        data = figures.figure6(harness, counts=(5, 10), repeats=2, cases=cases, model_name="small_vgg")
        stats = data["duo"][5]
        assert stats["min_ips"] <= stats["mean_ips"] <= stats["max_ips"]

    def test_figure15_breakdown(self, harness):
        data = figures.figure15(harness, methods=("offload", "deeperthings"), model_name="small_vgg")
        assert set(data) == {"offload", "deeperthings"}
        for row in data.values():
            assert row["end_to_end_ms"] > 0
            assert row["max_compute_ms"] >= 0

    def test_figure7_subset(self, harness):
        data = figures.figure7(
            harness, bandwidths=(100.0,), methods=("offload", "aofl"), model_name="small_vgg"
        )
        assert set(data) == {"DA-100Mbps", "DB-100Mbps", "DC-100Mbps"}
        for row in data.values():
            assert set(row) == {"offload", "aofl"}


class TestReporting:
    def test_format_ips_table(self):
        text = format_ips_table({"DB-50": {"aofl": 5.0, "distredge": 9.0}})
        assert "DB-50" in text and "9.0" in text

    def test_format_ips_table_empty(self):
        assert format_ips_table({}) == "(no results)"

    def test_format_series(self):
        text = format_series({"a": {"x": 1.0}}, title="T")
        assert text.startswith("T")

    def test_speedup_summary(self):
        out = speedup_summary({"s": {"aofl": 5.0, "offload": 8.0, "distredge": 12.0}})
        assert out["s"] == pytest.approx(1.5)


class TestLoadCurveKnee:
    def _curve(self):
        return {
            "1.0rps": {"offered_rps_total": 2.0, "deadline_miss_rate": 0.0},
            "2.0rps": {"offered_rps_total": 4.0, "deadline_miss_rate": 0.01},
            "4.0rps": {"offered_rps_total": 8.0, "deadline_miss_rate": 0.4},
        }

    def test_knee_is_last_point_within_target(self):
        assert figures.load_curve_knee(self._curve()) == pytest.approx(2.0)
        assert figures.load_curve_knee(self._curve(), 0.05) == pytest.approx(4.0)
        assert figures.load_curve_knee(self._curve(), 0.5) == pytest.approx(8.0)

    def test_every_point_missing_returns_none(self):
        curve = {"a": {"offered_rps_total": 2.0, "deadline_miss_rate": 0.9}}
        assert figures.load_curve_knee(curve) is None
        assert figures.load_curve_knee({}) is None

    def test_target_validated(self):
        with pytest.raises(ValueError):
            figures.load_curve_knee(self._curve(), -0.1)
        with pytest.raises(ValueError):
            figures.load_curve_knee(self._curve(), 1.1)

    def test_knee_feeds_autoscaler_calibration(self):
        from repro.serving.control import AutoscalerConfig

        knee = figures.load_curve_knee(self._curve(), 0.05)
        cfg = AutoscalerConfig.from_knee(
            knee_rps=knee, knee_devices=2,
            min_devices=1, max_devices=8, window_s=5.0,
        )
        assert cfg.capacity_per_device_rps == pytest.approx(2.0)
