"""Parity and caching tests for the batched plan-evaluation engine.

The batch evaluator's contract is stronger than "close enough": it mirrors
the scalar evaluator operation-for-operation, so every quantity it reports
must agree to 1e-9 — and in practice bit-exactly, which the routing of
DDPG/LC-PSS/OSDS through the batch path relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import (
    KNNProfile,
    LinearProfile,
    PiecewiseLinearProfile,
    TabularProfile,
)
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator, network_state_signature, plan_signature
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.oracles import MemoizedComputeOracle, ProfileComputeOracle, profiles_by_device
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import as_rng

TOL = 1e-9


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def mixed_devices():
    return make_cluster([("xavier", 300), ("tx2", 200), ("nano", 100), ("pi3", 50)])


def random_plans(model, devices, boundaries, count, seed=7, drop_rate=0.3):
    """Random plans including occasional zero-row (non-participating) devices."""
    rng = as_rng(seed)
    volumes = model.partition(boundaries)
    n = len(devices)
    plans = []
    for _ in range(count):
        decisions = []
        for volume in volumes:
            fractions = rng.random(n)
            if rng.random() < drop_rate:
                fractions[int(rng.integers(n))] = 0.0
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        plans.append(DistributionPlan(model, devices, boundaries, decisions))
    return plans


def assert_results_match(scalar_result, batch_result):
    """Every reported quantity agrees to 1e-9 (bit-exact in practice)."""
    assert batch_result.end_to_end_ms == pytest.approx(scalar_result.end_to_end_ms, abs=TOL)
    assert batch_result.scatter_end_ms == pytest.approx(scalar_result.scatter_end_ms, abs=TOL)
    assert batch_result.head_device == scalar_result.head_device
    assert batch_result.head_compute_ms == pytest.approx(scalar_result.head_compute_ms, abs=TOL)
    np.testing.assert_allclose(
        batch_result.per_device_compute_ms, scalar_result.per_device_compute_ms, atol=TOL
    )
    np.testing.assert_allclose(
        batch_result.per_device_send_ms, scalar_result.per_device_send_ms, atol=TOL
    )
    np.testing.assert_allclose(
        batch_result.per_device_recv_ms, scalar_result.per_device_recv_ms, atol=TOL
    )
    assert len(batch_result.volume_timings) == len(scalar_result.volume_timings)
    for vt_b, vt_s in zip(batch_result.volume_timings, scalar_result.volume_timings):
        np.testing.assert_allclose(vt_b.finish_ms, vt_s.finish_ms, atol=TOL)
        np.testing.assert_allclose(vt_b.ready_ms, vt_s.ready_ms, atol=TOL)
        np.testing.assert_allclose(vt_b.compute_ms, vt_s.compute_ms, atol=TOL)
        np.testing.assert_allclose(vt_b.recv_bytes, vt_s.recv_bytes, atol=TOL)


class TestParity:
    def test_ground_truth_parity_mixed_cluster(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, 3, 7, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 24)
        batch_results = batch.evaluate_plans(plans)
        for plan, batch_result in zip(plans, batch_results):
            assert_results_match(scalar.evaluate(plan), batch_result)

    def test_bit_exact_end_to_end(self, model, mixed_devices):
        """The stronger guarantee the OSDS routing relies on: bit equality."""
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, 5, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 16, seed=11)
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            scalar_result = scalar.evaluate(plan)
            assert batch_result.end_to_end_ms == scalar_result.end_to_end_ms
            for vt_b, vt_s in zip(batch_result.volume_timings, scalar_result.volume_timings):
                assert np.array_equal(vt_b.finish_ms, vt_s.finish_ms)

    def test_parity_on_dynamic_network_at_nonzero_time(self, model, mixed_devices):
        network = NetworkModel.from_devices(mixed_devices, kind="dynamic", seed=3)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, 6, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 8, seed=5)
        for t_seconds in (0.0, 137.5):
            for plan, batch_result in zip(plans, batch.evaluate_plans(plans, t_seconds)):
                assert_results_match(scalar.evaluate(plan, t_seconds), batch_result)

    def test_parity_without_dense_head(self, mixed_devices):
        """YOLOv2 has no FC head: outputs return directly to the requester."""
        yolo = model_zoo.yolov2(416)
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, 8, yolo.num_spatial_layers]
        plans = random_plans(yolo, mixed_devices, boundaries, 6, seed=2)
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            assert batch_result.head_device is None
            assert_results_match(scalar.evaluate(plan), batch_result)

    def test_parity_with_profile_oracle(self, model, mixed_devices):
        """The generic (non-vectorised) compute path must agree too."""
        per_type = {}
        for device in mixed_devices:
            if device.type_name not in per_type:
                points = LatencyProfiler(device.dtype, seed=0).profile_model(
                    model, heights_per_layer=8
                )
                per_type[device.type_name] = TabularProfile.from_points(points)
        profiles = profiles_by_device(mixed_devices, per_type)
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(
            mixed_devices,
            network,
            compute_oracle=ProfileComputeOracle(mixed_devices, profiles),
            memoize_compute=False,
        )
        batch = BatchPlanEvaluator(
            mixed_devices, network, compute_oracle=ProfileComputeOracle(mixed_devices, profiles)
        )
        boundaries = [0, 4, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 8)
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            assert_results_match(scalar.evaluate(plan), batch_result)

    @pytest.mark.parametrize(
        "representation",
        [TabularProfile, LinearProfile, PiecewiseLinearProfile, KNNProfile],
    )
    def test_profile_oracle_bit_exact_per_representation(
        self, model, mixed_devices, representation
    ):
        """The vectorised profile sweep (one array lookup per layer and
        shared profile) must be *bit*-exact for every representation."""
        per_type = {}
        for device in mixed_devices:
            if device.type_name not in per_type:
                points = LatencyProfiler(device.dtype, seed=0).profile_model(
                    model, heights_per_layer=8
                )
                per_type[device.type_name] = representation.from_points(points)
        profiles = profiles_by_device(mixed_devices, per_type)
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(
            mixed_devices,
            network,
            compute_oracle=ProfileComputeOracle(mixed_devices, profiles),
            memoize_compute=False,
        )
        batch = BatchPlanEvaluator(
            mixed_devices, network, compute_oracle=ProfileComputeOracle(mixed_devices, profiles)
        )
        boundaries = [0, 4, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 12, seed=17)
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            scalar_result = scalar.evaluate(plan)
            assert batch_result.end_to_end_ms == scalar_result.end_to_end_ms
            np.testing.assert_array_equal(
                batch_result.per_device_compute_ms, scalar_result.per_device_compute_ms
            )

    def test_partial_profile_tolerated_for_idle_devices(self, model):
        """Regression: the vectorised sweep must not query a profile for a
        layer none of its devices compute — a partial profile that the scalar
        path tolerates (device always assigned 0 rows) must evaluate too."""
        devices = make_cluster([("xavier", 300), ("tx2", 200), ("pi3", 50)])
        per_type = {}
        for device in devices:
            if device.type_name not in per_type:
                points = LatencyProfiler(device.dtype, seed=0).profile_model(
                    model, heights_per_layer=8
                )
                if device.type_name == "pi3":
                    # The pi3 profile covers only the first layer.
                    first = next(iter(points))
                    points = {first: points[first]}
                per_type[device.type_name] = TabularProfile.from_points(points)
        profiles = profiles_by_device(devices, per_type)
        network = NetworkModel.constant_from_devices(devices)
        scalar = PlanEvaluator(
            devices,
            network,
            compute_oracle=ProfileComputeOracle(devices, profiles),
            memoize_compute=False,
        )
        batch = BatchPlanEvaluator(
            devices, network, compute_oracle=ProfileComputeOracle(devices, profiles)
        )
        boundaries = [0, model.num_spatial_layers]
        rng = as_rng(25)
        volumes = model.partition(boundaries)
        plans = []
        for _ in range(4):
            decisions = [
                SplitDecision.from_fractions(
                    [float(rng.random()), float(rng.random()), 0.0], v.output_height
                )
                for v in volumes
            ]
            plans.append(DistributionPlan(model, devices, boundaries, decisions))
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            assert batch_result.end_to_end_ms == scalar.evaluate(plan).end_to_end_ms

    def test_profile_memo_seeded_by_batch_path(self, model, mixed_devices):
        """The vectorised profile sweep pre-pays the stepping path's memo."""
        per_type = {}
        for device in mixed_devices:
            if device.type_name not in per_type:
                points = LatencyProfiler(device.dtype, seed=0).profile_model(
                    model, heights_per_layer=8
                )
                per_type[device.type_name] = TabularProfile.from_points(points)
        profiles = profiles_by_device(mixed_devices, per_type)
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(
            mixed_devices, network, compute_oracle=ProfileComputeOracle(mixed_devices, profiles)
        )
        boundaries = [0, 5, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 6, seed=9)
        batch_results = batch.evaluate_plans(plans)
        stepping = PlanEvaluator(mixed_devices, network, compute_oracle=batch.oracle)
        misses_before = batch.oracle.cache_info()["misses"]
        for plan, batch_result in zip(plans, batch_results):
            assert stepping.evaluate(plan).end_to_end_ms == batch_result.end_to_end_ms
        assert batch.oracle.cache_info()["misses"] == misses_before

    def test_mixed_groups_in_one_batch(self, model, mixed_devices):
        """Plans with different models/partitions may share one batch call."""
        yolo = model_zoo.yolov2(416)
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        plans = (
            random_plans(model, mixed_devices, [0, 5, model.num_spatial_layers], 4, seed=1)
            + random_plans(yolo, mixed_devices, [0, yolo.num_spatial_layers], 3, seed=2)
            + random_plans(model, mixed_devices, [0, model.num_spatial_layers], 3, seed=3)
        )
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            assert_results_match(scalar.evaluate(plan), batch_result)

    def test_single_device_offload_plans(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        scalar = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        batch = BatchPlanEvaluator(mixed_devices, network)
        plans = [
            DistributionPlan.single_device(model, mixed_devices, idx)
            for idx in range(len(mixed_devices))
        ]
        for plan, batch_result in zip(plans, batch.evaluate_plans(plans)):
            assert_results_match(scalar.evaluate(plan), batch_result)

    def test_memo_replay_matches_batch(self, model, mixed_devices):
        """Stepping through a memo seeded by the batch engine is bit-exact."""
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, 5, model.num_spatial_layers]
        plans = random_plans(model, mixed_devices, boundaries, 6, seed=9)
        batch_results = batch.evaluate_plans(plans)
        # Scalar stepping through the evaluator's (now seeded) memoized oracle.
        stepping = PlanEvaluator(mixed_devices, network, compute_oracle=batch.oracle)
        for plan, batch_result in zip(plans, batch_results):
            assert stepping.evaluate(plan).end_to_end_ms == batch_result.end_to_end_ms


class TestPlanCache:
    def test_repeat_evaluation_hits(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        plans = random_plans(model, mixed_devices, [0, model.num_spatial_layers], 5)
        first = batch.evaluate_plans(plans)
        hits_after_first = batch.cache_info()["hits"]
        second = batch.evaluate_plans(plans)
        assert batch.cache_info()["hits"] == hits_after_first + len(plans)
        for a, b in zip(first, second):
            assert a.end_to_end_ms == b.end_to_end_ms

    def test_structurally_equal_plans_share_entries(self, model, mixed_devices):
        """A rebuilt plan with the same decisions is a cache hit."""
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        boundaries = [0, model.num_spatial_layers]
        (plan,) = random_plans(model, mixed_devices, boundaries, 1)
        rebuilt = DistributionPlan(
            model, mixed_devices, boundaries, plan.decisions, head_device=plan.head_device
        )
        batch.evaluate(plan)
        misses = batch.cache_info()["misses"]
        batch.evaluate(rebuilt)
        assert batch.cache_info()["misses"] == misses
        assert batch.cache_info()["hits"] >= 1

    def test_time_reuse_on_constant_network_only(self, model, mixed_devices):
        constant = NetworkModel.constant_from_devices(mixed_devices)
        dynamic = NetworkModel.from_devices(mixed_devices, kind="dynamic", seed=4)
        (plan,) = random_plans(model, mixed_devices, [0, model.num_spatial_layers], 1)
        batch_constant = BatchPlanEvaluator(mixed_devices, constant)
        batch_constant.evaluate(plan, t_seconds=0.0)
        batch_constant.evaluate(plan, t_seconds=500.0)
        assert batch_constant.cache_info()["hits"] == 1  # same network state
        # On a dynamic trace the state signature differs, so no stale reuse.
        assert network_state_signature(dynamic, 0.0) != network_state_signature(dynamic, 500.0)
        batch_dynamic = BatchPlanEvaluator(mixed_devices, dynamic)
        r0 = batch_dynamic.evaluate(plan, t_seconds=0.0)
        r1 = batch_dynamic.evaluate(plan, t_seconds=500.0)
        assert batch_dynamic.cache_info()["hits"] == 0
        assert r0.end_to_end_ms != r1.end_to_end_ms

    def test_method_label_patched_on_hit(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        plan_a = DistributionPlan.single_device(model, mixed_devices, 0, method="offload")
        plan_b = DistributionPlan.single_device(model, mixed_devices, 0, method="renamed")
        result_a = batch.evaluate(plan_a)
        result_b = batch.evaluate(plan_b)
        assert batch.cache_info()["hits"] >= 1
        assert result_a.method == "offload"
        assert result_b.method == "renamed"
        assert result_a.end_to_end_ms == result_b.end_to_end_ms

    def test_duplicate_plans_within_one_batch(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        (plan,) = random_plans(model, mixed_devices, [0, model.num_spatial_layers], 1)
        results = batch.evaluate_plans([plan, plan, plan])
        assert len({r.end_to_end_ms for r in results}) == 1

    def test_duplicates_survive_lru_eviction_mid_batch(self, model, mixed_devices):
        """Regression: a duplicate must resolve even if the LRU already
        evicted its entry by the end of the call (cache smaller than batch)."""
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network, cache_size=1)
        boundaries = [0, 5, model.num_spatial_layers]
        plan_a, plan_b = random_plans(model, mixed_devices, boundaries, 2, seed=21)
        results = batch.evaluate_plans([plan_a, plan_b, plan_a])
        assert results[0].end_to_end_ms == results[2].end_to_end_ms
        reference = BatchPlanEvaluator(mixed_devices, network).evaluate(plan_b)
        assert results[1].end_to_end_ms == reference.end_to_end_ms

    def test_plan_signature_structure(self, model, mixed_devices):
        (plan,) = random_plans(model, mixed_devices, [0, 5, model.num_spatial_layers], 1)
        boundaries, cuts, head = plan_signature(plan)
        assert boundaries == tuple(plan.boundaries)
        assert len(cuts) == plan.num_volumes
        assert head == plan.head_device

    def test_device_count_mismatch_rejected(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        batch = BatchPlanEvaluator(mixed_devices, network)
        duo = make_cluster([("xavier", 200), ("nano", 200)])
        plan = DistributionPlan.single_device(model, duo, 0)
        with pytest.raises(ValueError, match="devices"):
            batch.evaluate_plans([plan])


class TestMemoizedComputeOracle:
    def test_hits_across_equal_volumes(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        evaluator = PlanEvaluator(mixed_devices, network)
        assert isinstance(evaluator.oracle, MemoizedComputeOracle)
        boundaries = [0, model.num_spatial_layers]
        (plan,) = random_plans(model, mixed_devices, boundaries, 1)
        evaluator.evaluate(plan)
        misses = evaluator.oracle.cache_info()["misses"]
        # A structurally identical plan re-partitions the model into *new*
        # volume objects; the structural keys must still hit.
        rebuilt = DistributionPlan(model, mixed_devices, boundaries, plan.decisions)
        evaluator.evaluate(rebuilt)
        assert evaluator.oracle.cache_info()["misses"] == misses

    def test_memoized_values_are_identical(self, model, mixed_devices):
        network = NetworkModel.constant_from_devices(mixed_devices)
        plain = PlanEvaluator(mixed_devices, network, memoize_compute=False)
        memoized = PlanEvaluator(mixed_devices, network)
        boundaries = [0, 4, model.num_spatial_layers]
        for plan in random_plans(model, mixed_devices, boundaries, 6, seed=13):
            assert memoized.evaluate(plan).end_to_end_ms == plain.evaluate(plan).end_to_end_ms
