"""Tests for DistributionPlan and the redistribution arithmetic."""

from __future__ import annotations

import pytest

from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision, split_volume
from repro.runtime.plan import DistributionPlan, redistribution_bytes, scatter_bytes
from repro.utils.units import FP16_BYTES


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def equal_plan(model, devices, boundaries=None):
    boundaries = boundaries or [0, 4, 8, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    decisions = [SplitDecision.equal(len(devices), v.output_height) for v in volumes]
    return DistributionPlan(model, devices, boundaries, decisions, method="equal")


class TestRedistributionBytes:
    def test_no_transfer_when_aligned_single_device(self, model):
        volume_a = model.volume(0, 2)
        volume_b = model.volume(2, 4)
        prev = split_volume(volume_a, SplitDecision.single_device(0, 2, volume_a.output_height))
        cur = split_volume(volume_b, SplitDecision.single_device(0, 2, volume_b.output_height))
        row_bytes = volume_b.first.in_w * volume_b.first.in_c * FP16_BYTES
        assert redistribution_bytes(prev, cur, row_bytes) == {}

    def test_full_move_when_device_changes(self, model):
        volume_a = model.volume(0, 2)
        volume_b = model.volume(2, 4)
        prev = split_volume(volume_a, SplitDecision.single_device(0, 2, volume_a.output_height))
        cur = split_volume(volume_b, SplitDecision.single_device(1, 2, volume_b.output_height))
        row_bytes = volume_b.first.in_w * volume_b.first.in_c * FP16_BYTES
        transfers = redistribution_bytes(prev, cur, row_bytes)
        assert list(transfers) == [(0, 1)]
        assert transfers[(0, 1)] == volume_b.first.in_h * row_bytes

    def test_halo_only_when_splits_aligned(self, model):
        """With identical fractions, only the halo rows cross the network."""
        volume_a = model.volume(0, 2)
        volume_b = model.volume(2, 4)
        d_prev = SplitDecision.equal(2, volume_a.output_height)
        d_cur = SplitDecision.equal(2, volume_b.output_height)
        prev = split_volume(volume_a, d_prev)
        cur = split_volume(volume_b, d_cur)
        row_bytes = volume_b.first.in_w * volume_b.first.in_c * FP16_BYTES
        transfers = redistribution_bytes(prev, cur, row_bytes)
        total_rows = sum(v // row_bytes for v in transfers.values())
        # Halo is a handful of rows, far less than the full tensor height.
        assert 0 < total_rows <= 6

    def test_empty_parts_send_and_receive_nothing(self, model):
        volume_a = model.volume(0, 2)
        volume_b = model.volume(2, 4)
        prev = split_volume(volume_a, SplitDecision.from_fractions([1, 0], volume_a.output_height))
        cur = split_volume(volume_b, SplitDecision.from_fractions([1, 0], volume_b.output_height))
        row_bytes = volume_b.first.in_w * volume_b.first.in_c * FP16_BYTES
        transfers = redistribution_bytes(prev, cur, row_bytes)
        assert all(src != 1 and dst != 1 for src, dst in transfers)

    def test_scatter_bytes_counts_only_non_empty(self, model):
        volume = model.volume(0, 2)
        parts = split_volume(volume, SplitDecision.from_fractions([1, 0, 1], volume.output_height))
        assert scatter_bytes(parts) == sum(p.input_bytes for p in parts if not p.is_empty)


class TestDistributionPlan:
    def test_valid_plan_construction(self, model, hetero_cluster):
        plan = equal_plan(model, hetero_cluster)
        assert plan.num_volumes == 3
        assert plan.num_devices == 4

    def test_decision_count_mismatch(self, model, hetero_cluster):
        boundaries = [0, 4, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        decisions = [SplitDecision.equal(4, volumes[0].output_height)]
        with pytest.raises(ValueError):
            DistributionPlan(model, hetero_cluster, boundaries, decisions)

    def test_decision_device_count_mismatch(self, model, hetero_cluster):
        boundaries = [0, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        decisions = [SplitDecision.equal(2, volumes[0].output_height)]
        with pytest.raises(ValueError):
            DistributionPlan(model, hetero_cluster, boundaries, decisions)

    def test_decision_height_mismatch(self, model, hetero_cluster):
        boundaries = [0, model.num_spatial_layers]
        decisions = [SplitDecision.equal(4, 999)]
        with pytest.raises(ValueError):
            DistributionPlan(model, hetero_cluster, boundaries, decisions)

    def test_default_head_device_largest_share(self, model, hetero_cluster):
        boundaries = [0, model.num_spatial_layers]
        volume = model.partition(boundaries)[0]
        decisions = [SplitDecision.from_fractions([0.1, 0.6, 0.2, 0.1], volume.output_height)]
        plan = DistributionPlan(model, hetero_cluster, boundaries, decisions)
        assert plan.head_device == 1

    def test_head_device_out_of_range(self, model, hetero_cluster):
        boundaries = [0, model.num_spatial_layers]
        volume = model.partition(boundaries)[0]
        decisions = [SplitDecision.equal(4, volume.output_height)]
        with pytest.raises(ValueError):
            DistributionPlan(model, hetero_cluster, boundaries, decisions, head_device=9)

    def test_single_device_plan(self, model, hetero_cluster):
        plan = DistributionPlan.single_device(model, hetero_cluster, 2)
        assert plan.num_volumes == 1
        rows = plan.assignment(0).decision.rows_per_device()
        assert rows[2] > 0 and sum(rows) == rows[2]
        assert plan.head_device == 2

    def test_total_macs_includes_recomputation(self, model, hetero_cluster):
        plan = equal_plan(model, hetero_cluster)
        assert plan.total_macs() >= model.total_macs
        assert plan.recomputation_overhead() >= 0.0

    def test_single_device_has_no_recomputation(self, model, hetero_cluster):
        plan = DistributionPlan.single_device(model, hetero_cluster, 0)
        assert plan.recomputation_overhead() == pytest.approx(0.0)

    def test_total_transmission_single_device(self, model, hetero_cluster):
        plan = DistributionPlan.single_device(model, hetero_cluster, 0)
        expected = model.input_bytes + model.head_layers[-1].output_bytes
        assert plan.total_transmission_bytes() == expected

    def test_layer_by_layer_transmits_more_than_fused(self, hetero_cluster):
        """Finer partitions pay more boundary traffic (paper's motivation for
        fusing layers into layer-volumes)."""
        vgg = model_zoo.vgg16()
        pooled = equal_plan(vgg, hetero_cluster, [0, 3, 6, 10, 14, 18])
        lbl = equal_plan(vgg, hetero_cluster, vgg.layer_by_layer_partition())
        assert lbl.total_transmission_bytes() > pooled.total_transmission_bytes()

    def test_describe_mentions_method_and_volumes(self, model, hetero_cluster):
        plan = equal_plan(model, hetero_cluster)
        text = plan.describe()
        assert "equal" in text and "volume 0" in text

    def test_active_devices(self, model, hetero_cluster):
        boundaries = [0, model.num_spatial_layers]
        volume = model.partition(boundaries)[0]
        decisions = [SplitDecision.from_fractions([1, 0, 1, 0], volume.output_height)]
        plan = DistributionPlan(model, hetero_cluster, boundaries, decisions)
        assert plan.assignment(0).active_devices == [0, 2]
