"""Tests for the single-image plan evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.latency_model import ComputeLatencyModel
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import EvaluationResult, PlanEvaluator
from repro.runtime.plan import DistributionPlan


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def make_env(spec):
    devices = make_cluster(spec)
    network = NetworkModel.constant_from_devices(devices)
    return devices, network, PlanEvaluator(devices, network)


def plan_with(model, devices, boundaries, fractions):
    volumes = model.partition(boundaries)
    decisions = [SplitDecision.from_fractions(fractions, v.output_height) for v in volumes]
    return DistributionPlan(model, devices, boundaries, decisions)


class TestOffloadPlans:
    def test_offload_latency_decomposition(self, model):
        devices, network, evaluator = make_env([("xavier", 200), ("nano", 200)])
        plan = DistributionPlan.single_device(model, devices, 0)
        result = evaluator.evaluate(plan)
        compute = ComputeLatencyModel(devices[0].dtype).full_model(model.spatial_layers)
        # End-to-end = scatter + backbone + head + return; must exceed pure backbone.
        assert result.end_to_end_ms > compute
        assert result.per_device_compute_ms[1] == 0.0
        assert result.head_device == 0

    def test_faster_device_offload_is_faster(self, model):
        devices, network, evaluator = make_env([("xavier", 200), ("nano", 200)])
        fast = evaluator.evaluate(DistributionPlan.single_device(model, devices, 0))
        slow = evaluator.evaluate(DistributionPlan.single_device(model, devices, 1))
        assert fast.end_to_end_ms < slow.end_to_end_ms

    def test_ips_is_inverse_latency(self, model):
        devices, network, evaluator = make_env([("nano", 100), ("nano", 100)])
        result = evaluator.evaluate(DistributionPlan.single_device(model, devices, 0))
        assert result.ips == pytest.approx(1000.0 / result.end_to_end_ms)


class TestDistributedPlans:
    def test_accumulated_latencies_shape(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        plan = plan_with(model, hetero_cluster, [0, 4, 8, 12], [1, 1, 1, 1])
        result = evaluator.evaluate(plan)
        acc = result.accumulated_latencies
        assert len(acc) == 3
        assert all(a.shape == (4,) for a in acc)
        # Accumulated latencies are non-decreasing over volumes for devices
        # that keep participating.
        assert np.all(acc[1] >= acc[0] - 1e-9)

    def test_empty_device_carries_latency_forward(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        boundaries = [0, 6, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        decisions = [
            SplitDecision.from_fractions([1, 1, 0, 0], volumes[0].output_height),
            SplitDecision.from_fractions([1, 0, 0, 0], volumes[1].output_height),
        ]
        plan = DistributionPlan(model, hetero_cluster, boundaries, decisions)
        result = evaluator.evaluate(plan)
        assert result.per_device_compute_ms[2] == 0.0
        assert result.per_device_compute_ms[3] == 0.0

    def test_distribution_helps_on_homogeneous_slow_cluster(self):
        """Four slow devices beat one slow device on a real-size model (the
        paper's core premise)."""
        vgg = model_zoo.vgg16()
        devices, network, evaluator = make_env([("nano", 200)] * 4)
        offload = evaluator.evaluate(DistributionPlan.single_device(vgg, devices, 0))
        distributed = evaluator.evaluate(
            plan_with(vgg, devices, [0, 3, 6, 10, 14, 18], [1, 1, 1, 1])
        )
        assert distributed.end_to_end_ms < offload.end_to_end_ms

    def test_lower_bandwidth_increases_latency(self, model):
        fast_devices, _, fast_eval = make_env([("nano", 300)] * 2)
        slow_devices, _, slow_eval = make_env([("nano", 20)] * 2)
        boundaries = [0, 6, 12]
        fast = fast_eval.evaluate(plan_with(model, fast_devices, boundaries, [1, 1]))
        slow = slow_eval.evaluate(plan_with(model, slow_devices, boundaries, [1, 1]))
        assert slow.end_to_end_ms > fast.end_to_end_ms
        assert slow.max_transmission_ms > fast.max_transmission_ms

    def test_layer_by_layer_has_more_transmission(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        fused = evaluator.evaluate(plan_with(model, hetero_cluster, [0, 6, 12], [1, 1, 1, 1]))
        lbl = evaluator.evaluate(
            plan_with(model, hetero_cluster, model.layer_by_layer_partition(), [1, 1, 1, 1])
        )
        assert lbl.max_transmission_ms > fused.max_transmission_ms

    def test_breakdown_consistency(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        plan = plan_with(model, hetero_cluster, [0, 6, 12], [4, 4, 1, 1])
        result = evaluator.evaluate(plan)
        assert result.max_compute_ms == pytest.approx(result.per_device_compute_ms.max())
        assert result.max_compute_ms < result.end_to_end_ms
        assert result.per_device_recv_ms.sum() > 0

    def test_time_argument_changes_nothing_on_constant_network(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        plan = plan_with(model, hetero_cluster, [0, 6, 12], [1, 1, 1, 1])
        a = evaluator.evaluate(plan, t_seconds=0.0)
        b = evaluator.evaluate(plan, t_seconds=1234.0)
        assert a.end_to_end_ms == pytest.approx(b.end_to_end_ms)

    def test_dynamic_network_changes_latency_over_time(self, model):
        devices = make_cluster([("nano", 70)] * 2)
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=1)
        evaluator = PlanEvaluator(devices, network)
        plan = plan_with(model, devices, [0, 6, 12], [1, 1])
        latencies = {evaluator.evaluate(plan, t_seconds=t).end_to_end_ms for t in (0, 900, 1800, 2700)}
        assert len(latencies) > 1

    def test_input_encoding_scales_scatter(self, model):
        devices = make_cluster([("nano", 50)] * 2)
        network = NetworkModel.constant_from_devices(devices)
        small_input = PlanEvaluator(devices, network, input_bytes_per_element=0.2)
        big_input = PlanEvaluator(devices, network, input_bytes_per_element=2.0)
        plan = plan_with(model, devices, [0, 6, 12], [1, 1])
        assert (
            big_input.evaluate(plan).end_to_end_ms > small_input.evaluate(plan).end_to_end_ms
        )

    def test_invalid_input_encoding(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        with pytest.raises(ValueError):
            PlanEvaluator(hetero_cluster, network, input_bytes_per_element=0.0)

    def test_plan_device_count_mismatch(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        other = make_cluster([("nano", 100)] * 2)
        plan = plan_with(model, other, [0, 12], [1, 1])
        with pytest.raises(ValueError):
            evaluator.evaluate(plan)

    def test_no_dense_head_returns_outputs_to_requester(self):
        model = model_zoo.yolov2()
        devices = make_cluster([("xavier", 200), ("xavier", 200)])
        network = NetworkModel.constant_from_devices(devices)
        evaluator = PlanEvaluator(devices, network)
        plan = plan_with(model, devices, [0, model.num_spatial_layers], [1, 1])
        result = evaluator.evaluate(plan)
        assert result.head_device is None
        assert result.head_compute_ms == 0.0

    def test_finalize_before_volumes_rejected(self, model, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        plan = plan_with(model, hetero_cluster, [0, 12], [1, 1, 1, 1])
        with pytest.raises(ValueError):
            evaluator.finalize(evaluator.new_state(), plan)


class TestIpsGuard:
    """Regression: ``ips`` used to return ``inf`` for non-positive latency."""

    @staticmethod
    def _result_with_latency(latency_ms):
        return EvaluationResult(
            end_to_end_ms=latency_ms,
            volume_timings=[],
            per_device_compute_ms=np.zeros(2),
            per_device_send_ms=np.zeros(2),
            per_device_recv_ms=np.zeros(2),
            scatter_end_ms=0.0,
            head_device=None,
            head_compute_ms=0.0,
        )

    def test_zero_latency_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            self._result_with_latency(0.0).ips

    def test_negative_latency_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            self._result_with_latency(-5.0).ips

    def test_positive_latency_unchanged(self):
        assert self._result_with_latency(250.0).ips == pytest.approx(4.0)
