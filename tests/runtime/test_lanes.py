"""Tests for the per-device lane scheduler."""

from __future__ import annotations

import pytest

from repro.runtime.lanes import Lane, LaneSet


class TestLane:
    def test_back_to_back_jobs_serialise(self):
        lane = Lane("compute")
        s1, e1 = lane.schedule(0.0, 10.0)
        s2, e2 = lane.schedule(0.0, 5.0)
        assert (s1, e1) == (0.0, 10.0)
        assert (s2, e2) == (10.0, 15.0)

    def test_later_arrival_waits_for_itself(self):
        lane = Lane("send")
        lane.schedule(0.0, 2.0)
        start, end = lane.schedule(100.0, 3.0)
        assert (start, end) == (100.0, 103.0)

    def test_busy_accounting(self):
        lane = Lane("recv")
        lane.schedule(0, 4)
        lane.schedule(0, 6)
        assert lane.busy_ms == 10
        assert lane.jobs == 2

    def test_peek_does_not_reserve(self):
        lane = Lane("x")
        lane.schedule(0, 5)
        peek = lane.peek(0, 5)
        assert peek == (5, 10)
        assert lane.free_at == 5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Lane("x").schedule(0, -1)

    def test_reset(self):
        lane = Lane("x")
        lane.schedule(0, 5)
        lane.reset()
        assert lane.free_at == 0 and lane.busy_ms == 0 and lane.jobs == 0


class TestLaneSet:
    def test_lazy_creation_and_reuse(self):
        lanes = LaneSet()
        a = lanes.lane(0, "send")
        b = lanes.lane(0, "send")
        assert a is b

    def test_roles_are_independent(self):
        lanes = LaneSet()
        lanes.schedule(0, "send", 0, 10)
        start, _ = lanes.schedule(0, "recv", 0, 10)
        assert start == 0.0

    def test_endpoints_are_independent(self):
        lanes = LaneSet()
        lanes.schedule(0, "compute", 0, 10)
        start, _ = lanes.schedule(1, "compute", 0, 10)
        assert start == 0.0

    def test_busy_of_unused_lane_is_zero(self):
        assert LaneSet().busy_ms(3, "send") == 0.0

    def test_reset_all(self):
        lanes = LaneSet()
        lanes.schedule(0, "send", 0, 5)
        lanes.reset()
        assert lanes.busy_ms(0, "send") == 0.0

    def test_all_lanes_listing(self):
        lanes = LaneSet()
        lanes.lane(0, "send")
        lanes.lane(1, "recv")
        assert len(lanes.all_lanes()) == 2
