"""Determinism and lifecycle tests for the sharded evaluation engine.

The sharded evaluator's contract mirrors the batch engine's: results merged
from worker processes must be *bit-identical* to a single-process
:class:`BatchPlanEvaluator` pass over the same plans — for every catalogue
scenario, for generated fleets at 1/2/4 workers, and for the profiled-oracle
path (workers rebuild profiles from the seeded profiler, so their world is
exactly the parent's).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenarios import ScenarioCatalog, generate_scenario
from repro.experiments.workloads import random_varied_plans
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.shard import OracleSpec, ShardedPlanEvaluator, build_oracle

MODEL_NAME = "small_vgg"


@pytest.fixture(scope="module")
def model():
    return model_zoo.get(MODEL_NAME)


def varied_plans(model, devices, count, seed=3):
    """Random plans with *varied* partition boundaries (multiple groups)."""
    return random_varied_plans(model, devices, count, seed=seed)


def assert_bit_identical(reference, sharded):
    assert len(reference) == len(sharded)
    for ref, got in zip(reference, sharded):
        assert got.end_to_end_ms == ref.end_to_end_ms
        assert got.scatter_end_ms == ref.scatter_end_ms
        assert got.head_device == ref.head_device
        assert got.head_compute_ms == ref.head_compute_ms
        assert got.method == ref.method
        assert np.array_equal(got.per_device_compute_ms, ref.per_device_compute_ms)
        assert np.array_equal(got.per_device_send_ms, ref.per_device_send_ms)
        assert np.array_equal(got.per_device_recv_ms, ref.per_device_recv_ms)
        assert len(got.volume_timings) == len(ref.volume_timings)
        for vt_got, vt_ref in zip(got.volume_timings, ref.volume_timings):
            assert np.array_equal(vt_got.ready_ms, vt_ref.ready_ms)
            assert np.array_equal(vt_got.finish_ms, vt_ref.finish_ms)
            assert np.array_equal(vt_got.compute_ms, vt_ref.compute_ms)
            assert np.array_equal(vt_got.recv_bytes, vt_ref.recv_bytes)


class TestBitIdenticalToSingleProcess:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_generated_fleet(self, model, workers):
        scenario = generate_scenario(12, seed=5)
        with ShardedPlanEvaluator(scenario, num_workers=workers, min_shard_size=1) as sharded:
            plans = varied_plans(model, sharded.devices, 16, seed=7)
            reference = BatchPlanEvaluator(sharded.devices, sharded.network).evaluate_plans(plans)
            assert_bit_identical(reference, sharded.evaluate_plans(plans))

    @pytest.mark.parametrize("name", sorted(ScenarioCatalog.all_named()))
    def test_every_catalogue_scenario(self, model, name):
        scenario = ScenarioCatalog.all_named()[name]
        t_seconds = 0.0 if scenario.trace_kind == "constant" else 17.25
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            plans = varied_plans(model, sharded.devices, 6, seed=11)
            reference = BatchPlanEvaluator(sharded.devices, sharded.network).evaluate_plans(
                plans, t_seconds
            )
            assert_bit_identical(reference, sharded.evaluate_plans(plans, t_seconds))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_profiled_oracle_path(self, model, workers):
        """Workers rebuild per-type profiles from the seeded profiler."""
        scenario = generate_scenario(8, seed=2)
        spec = OracleSpec(
            kind="profile", model=MODEL_NAME, heights_per_layer=6, seed=3
        )
        with ShardedPlanEvaluator(
            scenario, num_workers=workers, oracle_spec=spec, min_shard_size=1
        ) as sharded:
            plans = varied_plans(model, sharded.devices, 10, seed=13)
            reference = BatchPlanEvaluator(
                sharded.devices,
                sharded.network,
                compute_oracle=build_oracle(spec, sharded.devices),
            ).evaluate_plans(plans)
            assert_bit_identical(reference, sharded.evaluate_plans(plans))

    def test_no_head_model(self):
        """YOLOv2 has no dense head: outputs return straight to the requester."""
        scenario = generate_scenario(6, seed=12)
        yolo = model_zoo.get("yolov2")
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            plans = varied_plans(yolo, sharded.devices, 8, seed=3)
            reference = BatchPlanEvaluator(sharded.devices, sharded.network).evaluate_plans(plans)
            results = sharded.evaluate_plans(plans)
            assert_bit_identical(reference, results)
            assert all(r.head_device is None for r in results)

    def test_duplicates_across_shards(self, model):
        scenario = generate_scenario(6, seed=1)
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            base = varied_plans(model, sharded.devices, 4, seed=19)
            plans = base + [base[0], base[2]]
            results = sharded.evaluate_plans(plans)
            assert results[4].end_to_end_ms == results[0].end_to_end_ms
            assert results[5].end_to_end_ms == results[2].end_to_end_ms


class TestShardFormation:
    def test_groups_never_straddle_shards(self, model):
        scenario = generate_scenario(6, seed=4)
        sharded = ShardedPlanEvaluator(scenario, num_workers=3, min_shard_size=1)
        plans = varied_plans(model, sharded.devices, 24, seed=23)
        shards = sharded._shards(plans, sharded.num_workers)
        assert sorted(i for shard in shards for i in shard) == list(range(len(plans)))
        group_of = {
            i: (plan.model.name, tuple(plan.boundaries)) for i, plan in enumerate(plans)
        }
        seen = {}
        for shard_index, shard in enumerate(shards):
            for i in shard:
                key = group_of[i]
                assert seen.setdefault(key, shard_index) == shard_index

    def test_min_shard_size_is_per_worker(self, model):
        """A batch only fans out to as many workers as it can feed
        min_shard_size plans each — never one-plan shards to an 8-wide pool."""
        scenario = generate_scenario(4, seed=6)
        sharded = ShardedPlanEvaluator(scenario, num_workers=8, min_shard_size=4)
        plans = varied_plans(model, sharded.devices, 9, seed=59)
        # 9 // 4 = 2 usable workers: shards average >= 4 plans.
        shards = sharded._shards(plans, min(8, len(plans) // 4))
        assert len(shards) == 2
        results = sharded.evaluate_plans(plans)
        assert len(results) == len(plans)
        sharded.close()

    def test_small_batches_stay_local(self, model):
        scenario = generate_scenario(4, seed=6)
        sharded = ShardedPlanEvaluator(scenario, num_workers=4, min_shard_size=8)
        plans = varied_plans(model, sharded.devices, 5, seed=29)
        sharded.evaluate_plans(plans)
        assert sharded._executor is None  # never left the process
        assert sharded.cache_info()["misses"] > 0

    def test_single_plan_evaluate_is_local(self, model):
        scenario = generate_scenario(4, seed=6)
        sharded = ShardedPlanEvaluator(scenario, num_workers=4)
        (plan,) = varied_plans(model, sharded.devices, 1, seed=31)
        result = sharded.evaluate(plan)
        assert result.end_to_end_ms > 0
        assert sharded._executor is None


class TestLifecycle:
    def test_warm_up_and_reuse_after_close(self, model):
        scenario = generate_scenario(6, seed=8)
        sharded = ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1)
        assert sharded.warm_up() >= 1
        plans = varied_plans(model, sharded.devices, 6, seed=37)
        first = sharded.evaluate_plans(plans)
        sharded.close()
        assert sharded._executor is None
        # The pool restarts transparently on the next batch.
        second = sharded.evaluate_plans(plans)
        assert_bit_identical(first, second)
        sharded.close()

    def test_clear_cache(self, model):
        scenario = generate_scenario(6, seed=8)
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            plans = varied_plans(model, sharded.devices, 6, seed=41)
            sharded.evaluate_plans(plans)
            sharded.local.evaluate_plans(plans)
            assert sharded.cache_info()["size"] > 0
            sharded.clear_cache()
            assert sharded.cache_info()["size"] == 0

    def test_workers_zero_and_one_inline(self, model):
        scenario = generate_scenario(4, seed=9)
        for workers in (0, 1):
            sharded = ShardedPlanEvaluator(scenario, num_workers=workers, min_shard_size=1)
            plans = varied_plans(model, sharded.devices, 4, seed=43)
            results = sharded.evaluate_plans(plans)
            assert sharded._executor is None
            assert len(results) == len(plans)


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedPlanEvaluator(generate_scenario(4), num_workers=-1)

    def test_non_zoo_model_rejected(self):
        scenario = generate_scenario(4, seed=0)
        sharded = ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1)
        custom = model_zoo.small_vgg(32)  # non-default input size
        plans = varied_plans(custom, sharded.devices, 4, seed=47)
        with pytest.raises(ValueError, match="differs from the zoo build"):
            sharded.evaluate_plans(plans)

    def test_device_count_mismatch_rejected(self, model):
        scenario = generate_scenario(4, seed=0)
        other = generate_scenario(6, seed=0)
        sharded = ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1)
        other_devices, _ = other.build()
        plans = varied_plans(model, other_devices, 4, seed=53)
        with pytest.raises(ValueError, match="devices"):
            sharded.evaluate_plans(plans)

    def test_oracle_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            OracleSpec(kind="psychic")
        with pytest.raises(ValueError, match="name the model"):
            OracleSpec(kind="profile")
        with pytest.raises(ValueError, match="representation"):
            OracleSpec(kind="profile", model=MODEL_NAME, representation="spline")


class TestWarmPoolPlanners:
    """OSDS/the splitting MDP accept a sharded evaluator as their engine."""

    def test_split_mdp_steps_through_local_engine(self, model):
        from repro.core.mdp import SplitMDP

        scenario = generate_scenario(4, seed=9)
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            boundaries = [0, 4, model.num_spatial_layers]
            env = SplitMDP(model, boundaries, sharded.devices, sharded)
            reference = SplitMDP(model, boundaries, sharded.devices, sharded.local)
            rng = np.random.default_rng(2)
            actions = [
                rng.uniform(-1, 1, env.action_dim).astype(np.float32)
                for _ in range(env.num_volumes)
            ]
            latency, _ = env.rollout(actions)
            ref_latency, _ = reference.rollout(actions)
            assert latency == ref_latency

    def test_osds_with_sharded_evaluator_matches_local(self, model):
        from repro.core.ddpg import DDPGConfig
        from repro.core.mdp import SplitMDP
        from repro.core.osds import OSDS, OSDSConfig

        scenario = generate_scenario(4, seed=9)
        ddpg = DDPGConfig(actor_hidden=(16, 16), critic_hidden=(16, 16), warmup_transitions=8)
        boundaries = [0, 4, model.num_spatial_layers]
        seeds = None

        def run(evaluator):
            env = SplitMDP(model, boundaries, evaluator.devices, evaluator)
            cfg = OSDSConfig(max_episodes=8, ddpg=ddpg, seed=4, episode_batch=4)
            return OSDS(env, cfg).run(initial_decisions=seeds)

        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            pooled = run(sharded)
            local = run(sharded.local)
        assert pooled.best_latency_ms == local.best_latency_ms
        assert np.array_equal(pooled.episode_latencies_ms, local.episode_latencies_ms)


class TestPoolFailureRecovery:
    """A worker death mid-batch (fleet churn) must never surface to callers."""

    def test_broken_pool_falls_back_to_local_then_restarts(self, model, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        scenario = generate_scenario(6, seed=9)
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            plans = varied_plans(model, sharded.devices, 8, seed=11)
            reference = BatchPlanEvaluator(
                sharded.devices, sharded.network
            ).evaluate_plans(plans)

            class _DeadExecutor:
                def submit(self, *args, **kwargs):
                    raise BrokenProcessPool("worker died mid-batch")

            real_ensure = sharded._ensure_executor
            monkeypatch.setattr(sharded, "_ensure_executor", lambda: _DeadExecutor())
            results = sharded.evaluate_plans(plans)
            assert sharded.pool_failures == 1
            assert_bit_identical(reference, results)

            # The next batch lazily starts a fresh pool and matches again.
            monkeypatch.setattr(sharded, "_ensure_executor", real_ensure)
            results2 = sharded.evaluate_plans(plans)
            assert sharded.pool_failures == 1
            assert_bit_identical(reference, results2)
