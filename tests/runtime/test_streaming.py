"""Tests for the image-stream simulator (IPS protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.streaming import StreamingSimulator


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture()
def setup(model):
    devices = make_cluster([("nano", 100), ("nano", 100)])
    network = NetworkModel.constant_from_devices(devices)
    evaluator = PlanEvaluator(devices, network)
    plan = DistributionPlan.single_device(model, devices, 0)
    return devices, network, evaluator, plan


class TestStreaming:
    def test_ips_matches_single_image_latency_on_constant_network(self, setup):
        _, _, evaluator, plan = setup
        sim = StreamingSimulator(evaluator)
        result = sim.run(plan, num_images=20)
        single = evaluator.evaluate(plan)
        assert result.num_images == 20
        assert result.mean_latency_ms == pytest.approx(single.end_to_end_ms, rel=1e-6)
        assert result.ips == pytest.approx(single.ips, rel=1e-3)

    def test_time_advances_between_images(self, setup):
        _, _, evaluator, plan = setup
        result = StreamingSimulator(evaluator).run(plan, num_images=5)
        assert np.all(np.diff(result.image_start_s) > 0)

    def test_extra_gap_reduces_throughput(self, setup):
        _, _, evaluator, plan = setup
        tight = StreamingSimulator(evaluator).run(plan, num_images=10)
        spaced = StreamingSimulator(evaluator, extra_gap_ms=100.0).run(plan, num_images=10)
        assert spaced.ips < tight.ips
        # Per-image latency is unchanged; only the pacing differs.
        assert spaced.mean_latency_ms == pytest.approx(tight.mean_latency_ms)

    def test_max_duration_truncates(self, setup):
        _, _, evaluator, plan = setup
        result = StreamingSimulator(evaluator).run_duration(plan, duration_s=1.0)
        assert result.total_time_s >= 1.0
        assert result.num_images < 100_000

    def test_adaptation_hook_swaps_plan(self, model):
        devices = make_cluster([("xavier", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        evaluator = PlanEvaluator(devices, network)
        slow_plan = DistributionPlan.single_device(model, devices, 1, method="slow")
        fast_plan = DistributionPlan.single_device(model, devices, 0, method="fast")

        def hook(t, index, current, history):
            return fast_plan if index == 3 else None

        result = StreamingSimulator(evaluator).run(slow_plan, num_images=6, adaptation_hook=hook)
        assert result.method == "fast"
        assert result.per_image_latency_ms[0] > result.per_image_latency_ms[-1]

    def test_replan_counts_content_not_identity(self, model):
        """Equal-but-reconstructed hook plans must not pollute replan_times_s.

        The simulator historically compared ``replacement is not
        current_plan``: a controller rebuilding an identical plan every image
        logged a "replan" per image.  Replans are now counted by strategy
        content (:meth:`DistributionPlan.same_strategy`)."""
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        evaluator = PlanEvaluator(devices, network)
        plan = DistributionPlan.single_device(model, devices, 0)

        def rebuilding_hook(t, index, current, history):
            # Same strategy, freshly constructed object each image.
            return DistributionPlan.single_device(model, devices, 0)

        result = StreamingSimulator(evaluator).run(
            plan, num_images=5, adaptation_hook=rebuilding_hook
        )
        assert result.replan_times_s == []

        def switching_hook(t, index, current, history):
            return DistributionPlan.single_device(model, devices, 1) if index == 2 else None

        result = StreamingSimulator(evaluator).run(
            plan, num_images=5, adaptation_hook=switching_hook
        )
        # One genuine strategy change, logged once.
        assert len(result.replan_times_s) == 1

    def test_latency_series_shape(self, setup):
        _, _, evaluator, plan = setup
        result = StreamingSimulator(evaluator).run(plan, num_images=4)
        series = result.latency_series()
        assert series.shape == (4, 2)

    def test_p95_at_least_mean_for_varying_latencies(self, model):
        devices = make_cluster([("nano", 70)] * 2)
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=0)
        evaluator = PlanEvaluator(devices, network)
        boundaries = [0, 6, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        plan = DistributionPlan(
            model, devices, boundaries,
            [SplitDecision.equal(2, v.output_height) for v in volumes],
        )
        result = StreamingSimulator(evaluator, extra_gap_ms=2000.0).run_duration(
            plan, duration_s=120.0
        )
        assert result.p95_latency_ms >= result.mean_latency_ms

    def test_invalid_arguments(self, setup):
        _, _, evaluator, plan = setup
        with pytest.raises(ValueError):
            StreamingSimulator(evaluator, extra_gap_ms=-1)
        with pytest.raises(ValueError):
            StreamingSimulator(evaluator).run(plan, num_images=0)
        with pytest.raises(ValueError):
            StreamingSimulator(evaluator).run_duration(plan, duration_s=0)
