"""Tests for the compute oracles (ground-truth vs profile-backed)."""

from __future__ import annotations

import pytest

from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import TabularProfile
from repro.devices.specs import make_cluster
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision, split_volume
from repro.runtime.oracles import (
    GroundTruthComputeOracle,
    ProfileComputeOracle,
    profiles_by_device,
)


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def cluster():
    return make_cluster([("xavier", 100), ("nano", 100)])


@pytest.fixture(scope="module")
def per_type_profiles(model, cluster):
    out = {}
    for device in cluster:
        profiler = LatencyProfiler(device.dtype, noise_std=0.0)
        out[device.type_name] = TabularProfile.from_points(
            profiler.profile_model(model, heights_per_layer=None)
        )
    return out


class TestGroundTruthOracle:
    def test_part_latency_positive(self, model, cluster):
        oracle = GroundTruthComputeOracle(cluster)
        volume = model.volume(0, 3)
        parts = split_volume(volume, SplitDecision.equal(2, volume.output_height))
        assert oracle.part_latency_ms(0, volume, parts[0]) > 0

    def test_head_latency_positive(self, model, cluster):
        oracle = GroundTruthComputeOracle(cluster)
        assert oracle.head_latency_ms(0, model.head_layers) > 0


class TestProfileOracle:
    def test_noiseless_profile_matches_ground_truth(self, model, cluster, per_type_profiles):
        profiles = profiles_by_device(cluster, per_type_profiles)
        profile_oracle = ProfileComputeOracle(cluster, profiles)
        truth_oracle = GroundTruthComputeOracle(cluster)
        volume = model.volume(0, 4)
        parts = split_volume(volume, SplitDecision.from_fractions([0.7, 0.3], volume.output_height))
        for idx, part in enumerate(parts):
            assert profile_oracle.part_latency_ms(idx, volume, part) == pytest.approx(
                truth_oracle.part_latency_ms(idx, volume, part), rel=1e-6
            )

    def test_empty_part_is_free(self, model, cluster, per_type_profiles):
        profiles = profiles_by_device(cluster, per_type_profiles)
        oracle = ProfileComputeOracle(cluster, profiles)
        volume = model.volume(0, 2)
        parts = split_volume(volume, SplitDecision.single_device(0, 2, volume.output_height))
        assert oracle.part_latency_ms(1, volume, parts[1]) == 0.0

    def test_length_mismatch_rejected(self, cluster, per_type_profiles):
        with pytest.raises(ValueError):
            ProfileComputeOracle(cluster, [per_type_profiles["xavier"]])

    def test_profiles_by_device_missing_type(self, cluster, per_type_profiles):
        incomplete = {"xavier": per_type_profiles["xavier"]}
        with pytest.raises(KeyError, match="nano"):
            profiles_by_device(cluster, incomplete)
