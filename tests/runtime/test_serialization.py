"""Tests for plan/result serialisation."""

from __future__ import annotations

import json

import pytest

from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.serialization import (
    PLAN_FORMAT_VERSION,
    evaluation_from_payload,
    evaluation_to_dict,
    evaluation_to_payload,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.network.topology import NetworkModel


@pytest.fixture()
def plan(hetero_cluster):
    model = model_zoo.small_vgg(64)
    boundaries = [0, 4, 8, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    decisions = [
        SplitDecision.from_fractions([4, 4, 1, 1], v.output_height) for v in volumes
    ]
    return DistributionPlan(model, hetero_cluster, boundaries, decisions, method="unit-test")


class TestPlanSerialization:
    def test_roundtrip_preserves_strategy(self, plan):
        data = plan_to_dict(plan)
        restored = plan_from_dict(data, model=plan.model)
        assert restored.method == plan.method
        assert restored.boundaries == plan.boundaries
        assert restored.head_device == plan.head_device
        assert [d.cuts for d in restored.decisions] == [d.cuts for d in plan.decisions]
        assert [d.device_id for d in restored.devices] == [d.device_id for d in plan.devices]

    def test_roundtrip_through_zoo_model(self, plan):
        # small_vgg is a zoo model, so the plan can be restored by name alone.
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.model.name == "small_vgg"

    def test_dict_is_json_serialisable(self, plan):
        text = json.dumps(plan_to_dict(plan))
        assert "unit-test" in text

    def test_save_and_load_file(self, plan, tmp_path):
        path = save_plan(plan, tmp_path / "plan.json")
        restored = load_plan(path)
        assert restored.boundaries == plan.boundaries

    def test_format_version_checked(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_wrong_model_rejected(self, plan):
        data = plan_to_dict(plan)
        with pytest.raises(ValueError):
            plan_from_dict(data, model=model_zoo.tiny_cnn())

    def test_tampered_heights_rejected(self, plan):
        """A plan whose decisions no longer match the model fails validation."""
        data = plan_to_dict(plan)
        data["decisions"][0]["output_height"] = 999
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_restored_plan_evaluates_identically(self, plan, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        original = evaluator.evaluate(plan).end_to_end_ms
        restored = plan_from_dict(plan_to_dict(plan))
        restored_latency = PlanEvaluator(restored.devices,
                                         NetworkModel.constant_from_devices(restored.devices)
                                         ).evaluate(restored).end_to_end_ms
        assert restored_latency == pytest.approx(original, rel=1e-9)

    def test_version_constant(self):
        assert PLAN_FORMAT_VERSION == 1


class TestDevicesOverride:
    def test_matching_devices_reused(self, plan, hetero_cluster):
        data = plan_to_dict(plan)
        restored = plan_from_dict(data, model=plan.model, devices=hetero_cluster)
        assert restored.devices[0] is hetero_cluster[0]

    def test_wrong_count_rejected(self, plan, hetero_cluster):
        data = plan_to_dict(plan)
        with pytest.raises(ValueError, match="devices"):
            plan_from_dict(data, model=plan.model, devices=hetero_cluster[:-1])

    def test_wrong_bandwidth_rejected(self, plan, hetero_cluster):
        data = plan_to_dict(plan)
        data["devices"][0]["bandwidth_mbps"] = 1.0
        with pytest.raises(ValueError, match="does not match"):
            plan_from_dict(data, model=plan.model, devices=hetero_cluster)


class TestScenarioSerialization:
    def test_roundtrip(self):
        from repro.experiments.scenarios import generate_scenario

        scenario = generate_scenario(8, seed=4, trace_kind="dynamic")
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert restored == scenario
        json.dumps(scenario_to_dict(scenario))

    def test_roundtripped_scenario_builds_identical_network(self):
        from repro.experiments.scenarios import ScenarioCatalog

        scenario = ScenarioCatalog.dynamic_nano()
        restored = scenario_from_dict(scenario_to_dict(scenario))
        _, net_a = scenario.build(seed=5)
        _, net_b = restored.build(seed=5)
        for link_a, link_b in zip(net_a.provider_links, net_b.provider_links):
            for t in (0.0, 12.5, 99.0):
                assert link_a.throughput_mbps(t) == link_b.throughput_mbps(t)


class TestEvaluationSerialization:
    def test_evaluation_to_dict_fields(self, plan, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        result = PlanEvaluator(hetero_cluster, network).evaluate(plan)
        summary = evaluation_to_dict(result)
        assert summary["ips"] == pytest.approx(result.ips)
        assert len(summary["per_device_compute_ms"]) == len(hetero_cluster)
        json.dumps(summary)  # must be JSON-serialisable

    def test_payload_roundtrip_is_bit_exact(self, plan, hetero_cluster):
        import numpy as np

        network = NetworkModel.constant_from_devices(hetero_cluster)
        result = PlanEvaluator(hetero_cluster, network).evaluate(plan)
        restored = evaluation_from_payload(evaluation_to_payload(result))
        assert restored.end_to_end_ms == result.end_to_end_ms
        assert restored.scatter_end_ms == result.scatter_end_ms
        assert restored.head_device == result.head_device
        assert restored.head_compute_ms == result.head_compute_ms
        assert restored.method == result.method
        assert np.array_equal(restored.per_device_compute_ms, result.per_device_compute_ms)
        assert np.array_equal(restored.per_device_send_ms, result.per_device_send_ms)
        assert np.array_equal(restored.per_device_recv_ms, result.per_device_recv_ms)
        for vt_r, vt in zip(restored.volume_timings, result.volume_timings):
            assert vt_r.volume_index == vt.volume_index
            assert np.array_equal(vt_r.ready_ms, vt.ready_ms)
            assert np.array_equal(vt_r.finish_ms, vt.finish_ms)
            assert np.array_equal(vt_r.compute_ms, vt.compute_ms)
            assert np.array_equal(vt_r.recv_bytes, vt.recv_bytes)

    def test_payload_survives_json(self, plan, hetero_cluster):
        """repr round-trip of float64 through json keeps every bit."""
        network = NetworkModel.constant_from_devices(hetero_cluster)
        result = PlanEvaluator(hetero_cluster, network).evaluate(plan)
        payload = json.loads(json.dumps(evaluation_to_payload(result)))
        assert evaluation_from_payload(payload).end_to_end_ms == result.end_to_end_ms


class TestPlanBatchPayload:
    """Compact shard payloads: cluster/partition factored out per group."""

    def _varied_plans(self, cluster):
        from repro.experiments.workloads import random_varied_plans

        model = model_zoo.small_vgg(64)
        return random_varied_plans(model, cluster, 12, seed=3, min_cut_layer=2)

    def test_roundtrip_preserves_order_and_strategy(self, hetero_cluster):
        from repro.runtime.serialization import (
            plan_batch_from_payload,
            plan_batch_to_payload,
        )

        plans = self._varied_plans(hetero_cluster)
        payload = plan_batch_to_payload(plans)
        restored = plan_batch_from_payload(payload)
        assert len(restored) == len(plans)
        for original, rebuilt in zip(plans, restored):
            assert rebuilt.model.name == original.model.name
            assert rebuilt.boundaries == original.boundaries
            assert rebuilt.head_device == original.head_device
            assert rebuilt.method == original.method
            assert [d.cuts for d in rebuilt.decisions] == [
                d.cuts for d in original.decisions
            ]

    def test_groups_are_compact(self, hetero_cluster):
        from repro.runtime.serialization import plan_batch_to_payload

        plans = self._varied_plans(hetero_cluster)
        payload = plan_batch_to_payload(plans)
        # The cluster appears once, not once per plan.
        assert len(payload["devices"]) == len(hetero_cluster)
        boundaries = {tuple(p.boundaries) for p in plans}
        assert len(payload["groups"]) == len(boundaries)

    def test_supplied_devices_reused_and_validated_once(self, hetero_cluster):
        from repro.runtime.serialization import (
            plan_batch_from_payload,
            plan_batch_to_payload,
        )

        plans = self._varied_plans(hetero_cluster)
        payload = plan_batch_to_payload(plans)
        restored = plan_batch_from_payload(payload, devices=hetero_cluster)
        assert all(p.devices == list(hetero_cluster) for p in restored)
        with pytest.raises(ValueError):
            plan_batch_from_payload(payload, devices=hetero_cluster[:-1])

    def test_group_members_share_volume_objects(self, hetero_cluster):
        from repro.runtime.serialization import (
            plan_batch_from_payload,
            plan_batch_to_payload,
        )

        model = model_zoo.small_vgg(64)
        boundaries = [0, 4, 8, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        plans = [
            DistributionPlan(
                model,
                hetero_cluster,
                boundaries,
                [SplitDecision.from_fractions([i + 1, 3, 2, 1], v.output_height) for v in volumes],
            )
            for i in range(3)
        ]
        restored = plan_batch_from_payload(plan_batch_to_payload(plans))
        # The boundaries->volumes memo hands every plan of a group the same
        # frozen volume objects: the splitting arithmetic ran once.
        first = restored[0].volumes
        for other in restored[1:]:
            assert all(a is b for a, b in zip(first, other.volumes))

    def test_mixed_clusters_rejected(self, hetero_cluster, mixed_cluster):
        from repro.runtime.serialization import plan_batch_to_payload

        model = model_zoo.small_vgg(64)
        plans = [
            DistributionPlan.single_device(model, hetero_cluster, 0),
            DistributionPlan.single_device(model, mixed_cluster, 0),
        ]
        with pytest.raises(ValueError):
            plan_batch_to_payload(plans)

    def test_empty_batch(self):
        from repro.runtime.serialization import (
            plan_batch_from_payload,
            plan_batch_to_payload,
        )

        assert plan_batch_from_payload(plan_batch_to_payload([])) == []
