"""Tests for plan/result serialisation."""

from __future__ import annotations

import json

import pytest

from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.serialization import (
    PLAN_FORMAT_VERSION,
    evaluation_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.network.topology import NetworkModel


@pytest.fixture()
def plan(hetero_cluster):
    model = model_zoo.small_vgg(64)
    boundaries = [0, 4, 8, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    decisions = [
        SplitDecision.from_fractions([4, 4, 1, 1], v.output_height) for v in volumes
    ]
    return DistributionPlan(model, hetero_cluster, boundaries, decisions, method="unit-test")


class TestPlanSerialization:
    def test_roundtrip_preserves_strategy(self, plan):
        data = plan_to_dict(plan)
        restored = plan_from_dict(data, model=plan.model)
        assert restored.method == plan.method
        assert restored.boundaries == plan.boundaries
        assert restored.head_device == plan.head_device
        assert [d.cuts for d in restored.decisions] == [d.cuts for d in plan.decisions]
        assert [d.device_id for d in restored.devices] == [d.device_id for d in plan.devices]

    def test_roundtrip_through_zoo_model(self, plan):
        # small_vgg is a zoo model, so the plan can be restored by name alone.
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.model.name == "small_vgg"

    def test_dict_is_json_serialisable(self, plan):
        text = json.dumps(plan_to_dict(plan))
        assert "unit-test" in text

    def test_save_and_load_file(self, plan, tmp_path):
        path = save_plan(plan, tmp_path / "plan.json")
        restored = load_plan(path)
        assert restored.boundaries == plan.boundaries

    def test_format_version_checked(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_wrong_model_rejected(self, plan):
        data = plan_to_dict(plan)
        with pytest.raises(ValueError):
            plan_from_dict(data, model=model_zoo.tiny_cnn())

    def test_tampered_heights_rejected(self, plan):
        """A plan whose decisions no longer match the model fails validation."""
        data = plan_to_dict(plan)
        data["decisions"][0]["output_height"] = 999
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_restored_plan_evaluates_identically(self, plan, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        evaluator = PlanEvaluator(hetero_cluster, network)
        original = evaluator.evaluate(plan).end_to_end_ms
        restored = plan_from_dict(plan_to_dict(plan))
        restored_latency = PlanEvaluator(restored.devices,
                                         NetworkModel.constant_from_devices(restored.devices)
                                         ).evaluate(restored).end_to_end_ms
        assert restored_latency == pytest.approx(original, rel=1e-9)

    def test_version_constant(self):
        assert PLAN_FORMAT_VERSION == 1


class TestEvaluationSerialization:
    def test_evaluation_to_dict_fields(self, plan, hetero_cluster):
        network = NetworkModel.constant_from_devices(hetero_cluster)
        result = PlanEvaluator(hetero_cluster, network).evaluate(plan)
        summary = evaluation_to_dict(result)
        assert summary["ips"] == pytest.approx(result.ips)
        assert len(summary["per_device_compute_ms"]) == len(hetero_cluster)
        json.dumps(summary)  # must be JSON-serialisable
