"""Unit tests for the shared-fleet contention engine.

The acceptance bar of the subsystem's runtime layer: an idle fleet must
reproduce the uncontended scalar evaluation bit for bit, residual occupancy
must delay (and only delay) a request, the admission gate must serialise at
the configured cap, and commits must round-trip through residuals exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.contention import (
    LANE_ROLES,
    ContendedOutcome,
    ContentionAwareEvaluator,
    SharedFleetState,
    fleet_lane_keys,
)
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture()
def cluster():
    devices = make_cluster([("xavier", 200), ("nano", 200), ("nano", 100)])
    return devices, NetworkModel.constant_from_devices(devices)


def _split_plan(model, devices, method="split"):
    boundaries = [0, 6, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    return DistributionPlan(
        model,
        devices,
        boundaries,
        [SplitDecision.equal(len(devices), v.output_height) for v in volumes],
        method=method,
    )


class TestIdleFleetParity:
    def test_idle_fleet_matches_uncontended_bit_exactly(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        clean = PlanEvaluator(devices, network).evaluate(plan)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        result, outcome = engine.evaluate_contended(plan, release_ms=0.0)
        assert result.end_to_end_ms == clean.end_to_end_ms
        assert outcome.latency_ms == clean.end_to_end_ms
        assert np.array_equal(result.per_device_compute_ms, clean.per_device_compute_ms)
        assert np.array_equal(result.per_device_send_ms, clean.per_device_send_ms)
        assert np.array_equal(result.per_device_recv_ms, clean.per_device_recv_ms)
        assert not outcome.contended
        assert outcome.gate_wait_ms == 0.0

    def test_idle_fleet_matches_batch_engine(self, model, cluster):
        """The batch engine and the contended walk share one float sequence."""
        devices, network = cluster
        plan = _split_plan(model, devices)
        batch = BatchPlanEvaluator(devices, network).evaluate(plan)
        engine = ContentionAwareEvaluator(BatchPlanEvaluator(devices, network))
        result, _ = engine.evaluate_contended(plan)
        assert result.end_to_end_ms == batch.end_to_end_ms

    def test_drained_fleet_is_idle_again(self, model, cluster):
        """Once prior requests drained, a later release sees no contention."""
        devices, network = cluster
        plan = _split_plan(model, devices)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        first = engine.evaluate(plan, release_ms=0.0)
        later = engine.evaluate(plan, release_ms=first.latency_ms + 1.0)
        assert not later.contended
        assert later.latency_ms == first.latency_ms


class TestResiduals:
    def test_back_to_back_requests_queue(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        first = engine.evaluate(plan, release_ms=0.0)
        second = engine.evaluate(plan, release_ms=0.0)
        assert second.contended
        assert second.latency_ms > first.latency_ms
        assert sum(second.lane_wait_ms) > sum(first.lane_wait_ms)

    def test_commit_round_trips_through_residuals(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        release = 0.0  # release + rel_end - release is exact at 0
        outcome = engine.evaluate(plan, release_ms=release)
        residuals = engine.fleet.residuals(release)
        keys = fleet_lane_keys(len(devices))
        for key, residual, rel_end, jobs in zip(
            keys, residuals, outcome.lane_end_rel, outcome.lane_jobs
        ):
            if jobs:
                # Used lanes sit exactly at release + relative end.
                assert residual == rel_end
            else:
                assert residual == 0.0

    def test_unused_lanes_are_not_committed(self, model, cluster):
        devices, network = cluster
        single = DistributionPlan.single_device(model, devices, 0)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        engine.evaluate(single, release_ms=0.0)
        residuals = dict(zip(fleet_lane_keys(len(devices)), engine.fleet.residuals(0.0)))
        # Providers 1 and 2 never took part: their lanes stay idle.
        for j in (1, 2):
            for role in LANE_ROLES:
                assert residuals[(j, role)] == 0.0
        assert residuals[(0, "compute")] > 0.0

    def test_memo_hit_replays_identical_outcome(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        memoized = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=True)
        fresh = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        releases = [0.0, 3.0, 1000.0, 1000.0, 5000.0]
        for release in releases:
            a = memoized.evaluate(plan, release_ms=release)
            b = fresh.evaluate(plan, release_ms=release)
            assert a == b  # ContendedOutcome is a frozen dataclass of floats
        assert memoized.memo_hits > 0
        assert memoized.evaluations < len(releases)
        assert fresh.evaluations == len(releases)


class TestAdmissionGate:
    def test_floor_math(self):
        fleet = SharedFleetState(2)
        fleet._completions = [10.0, 20.0, 30.0]
        # Unlimited: the release itself.
        assert fleet.admission_floor(5.0, None) == 5.0
        # Cap 2 with three live completions: the new request joins once the
        # in-flight count drops to 1, i.e. after the second completion.
        assert fleet.admission_floor(5.0, 2) == 20.0
        # Cap 1: admitted only when all but none remain.
        assert fleet.admission_floor(5.0, 1) == 30.0
        # Completions at/before the release are not in flight.
        assert fleet.admission_floor(20.0, 1) == 30.0
        assert fleet.admission_floor(30.0, 1) == 30.0  # ties excluded -> only none live
        # Under the cap: no gate.
        assert fleet.admission_floor(25.0, 2) == 25.0

    def test_prune_keeps_gate_semantics(self):
        fleet = SharedFleetState(2)
        fleet._completions = [10.0, 20.0, 30.0]
        fleet.prune_completions(20.0)
        assert fleet._completions == [30.0]
        assert fleet.admission_floor(25.0, 1) == 30.0

    def test_cap_one_serialises_the_fleet(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        gated = ContentionAwareEvaluator(
            PlanEvaluator(devices, network), max_inflight=1, memoize=False
        )
        first = gated.evaluate(plan, release_ms=0.0)
        second = gated.evaluate(plan, release_ms=0.0)
        assert second.gate_wait_ms == first.latency_ms
        assert second.latency_ms >= first.latency_ms + first.latency_ms

    def test_gate_requires_positive_cap(self, cluster):
        devices, network = cluster
        with pytest.raises(ValueError, match="max_inflight"):
            ContentionAwareEvaluator(PlanEvaluator(devices, network), max_inflight=0)


class TestFleetAccounting:
    def test_load_report_totals(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        engine.evaluate(plan, release_ms=0.0)
        engine.evaluate(plan, release_ms=0.0)
        report = engine.fleet.load_report(
            1000.0, device_ids=[d.device_id for d in devices]
        )
        assert report.requests == 2
        assert report.contended_requests == 1
        assert report.contended_share == 0.5
        assert report.compute_busy_ms.sum() > 0
        assert report.total_wait_ms > 0
        assert np.all(report.utilization("compute") >= 0)
        payload = report.to_dict()
        assert payload["requests"] == 2
        assert len(payload["compute_busy_ms"]) == len(devices)
        assert payload["contended_share"] == 0.5

    def test_device_count_mismatches_raise(self, model, cluster):
        devices, network = cluster
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network))
        two = make_cluster([("nano", 100), ("nano", 100)])
        foreign = DistributionPlan.single_device(model, two, 0)
        with pytest.raises(ValueError, match="devices"):
            engine.evaluate(foreign, release_ms=0.0)
        with pytest.raises(ValueError, match="device ids"):
            engine.fleet.load_report(1.0, device_ids=["only-one"])

    def test_outcome_is_order_dependent(self, model, cluster):
        """Scheduling order matters by design: contention is stateful."""
        devices, network = cluster
        plan = _split_plan(model, devices)
        a = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        b = ContentionAwareEvaluator(PlanEvaluator(devices, network), memoize=False)
        a.evaluate(plan, release_ms=0.0)
        early_then_late = a.evaluate(plan, release_ms=1.0)
        b.evaluate(plan, release_ms=1.0)
        late_then_early = b.evaluate(plan, release_ms=0.0)
        assert early_then_late.latency_ms != late_then_early.latency_ms

    def test_rejects_unknown_evaluator_kinds(self, cluster):
        with pytest.raises(TypeError, match="PlanEvaluator"):
            ContentionAwareEvaluator(object())


class TestOutcomeShape:
    def test_outcome_vectors_follow_lane_key_order(self, model, cluster):
        devices, network = cluster
        plan = _split_plan(model, devices)
        engine = ContentionAwareEvaluator(PlanEvaluator(devices, network))
        outcome = engine.evaluate(plan, release_ms=0.0)
        n_lanes = len(devices) * len(LANE_ROLES)
        assert isinstance(outcome, ContendedOutcome)
        for vector in (
            outcome.lane_end_rel,
            outcome.lane_busy_ms,
            outcome.lane_wait_ms,
            outcome.lane_jobs,
        ):
            assert len(vector) == n_lanes
        # Every participating provider computed something.
        keys = fleet_lane_keys(len(devices))
        compute_busy = [
            busy for key, busy in zip(keys, outcome.lane_busy_ms) if key[1] == "compute"
        ]
        assert all(busy > 0 for busy in compute_busy)
