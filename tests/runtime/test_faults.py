"""Unit tests for the fleet-churn subsystem: grammar, policies, resolver.

Covers the ``churn:`` spec grammar's validation surface (unknown device
ids, out-of-order timestamps, emptying the fleet), RetryPolicy /
DegradationPolicy construction-time validation, and the pure decision
pieces (liveness queries, open-interval crash semantics, failover
replanning, the retry-chain resolver) that the serving loops share.
"""

from __future__ import annotations

import pytest

from repro.devices.specs import make_cluster
from repro.nn import model_zoo
from repro.runtime.faults import (
    ChurnSpec,
    DegradationPolicy,
    FaultEvent,
    FaultTrace,
    PlanDegrader,
    RetryPolicy,
    degrade_plan,
    parse_churn_spec,
    plan_devices,
    resolve_churn,
    resolve_faulted_request,
)
from repro.runtime.plan import DistributionPlan


def _trace(*items, n=4):
    return FaultTrace(
        events=tuple(FaultEvent(t_ms=t, kind=k, device=d) for k, d, t in items),
        num_devices=n,
    )


class TestChurnGrammar:
    def test_explicit_events_round_trip(self):
        spec = parse_churn_spec("churn:events=crash:0@120;leave:1@400;join:0@900")
        trace = spec.resolve(4)
        assert [e.label for e in trace.events] == [
            "crash:0@120", "leave:1@400", "join:0@900",
        ]
        rebuilt = resolve_churn(trace.spec, 4)
        assert rebuilt == trace

    def test_seeded_form_is_deterministic(self):
        a = resolve_churn("churn:crashes=2,leaves=1,joins=1,seed=7", 8)
        b = resolve_churn("churn:crashes=2,leaves=1,joins=1,seed=7", 8)
        assert a == b
        c = resolve_churn("churn:crashes=2,leaves=1,joins=1,seed=8", 8)
        assert a != c
        # Seeded events land inside [start_ms, start_ms + window_ms).
        assert all(1000.0 <= e.t_ms < 11000.0 for e in a.events)

    def test_unknown_device_id_rejected(self):
        with pytest.raises(ValueError, match="unknown device id 9"):
            resolve_churn("churn:events=crash:9@100", 4)

    def test_out_of_order_timestamps_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            resolve_churn("churn:events=crash:0@500;leave:1@100", 4)

    def test_crash_of_last_remaining_device_rejected(self):
        with pytest.raises(ValueError, match="last remaining"):
            resolve_churn("churn:events=crash:0@100;crash:1@200", 2)

    def test_removing_dead_device_rejected(self):
        with pytest.raises(ValueError, match="not live"):
            resolve_churn("churn:events=crash:0@100;leave:0@200", 4)

    def test_joining_live_device_rejected(self):
        with pytest.raises(ValueError, match="already live"):
            resolve_churn("churn:events=join:0@100", 4)

    def test_prefix_and_shape_errors(self):
        with pytest.raises(ValueError, match="must start with 'churn:'"):
            parse_churn_spec("gen:n=4")
        with pytest.raises(ValueError, match="empty churn spec"):
            parse_churn_spec("churn:")
        with pytest.raises(ValueError, match="key=value"):
            parse_churn_spec("churn:crashes")
        with pytest.raises(ValueError, match="duplicate churn option"):
            parse_churn_spec("churn:crashes=1,crashes=2")
        with pytest.raises(ValueError, match="unknown churn option"):
            parse_churn_spec("churn:frobs=2")
        with pytest.raises(ValueError, match="mutually exclusive"):
            parse_churn_spec("churn:events=crash:0@1,seed=3")
        with pytest.raises(ValueError, match="expected <kind>:<device>@<t_ms>"):
            parse_churn_spec("churn:events=crash@100")
        with pytest.raises(ValueError, match="unknown churn event kind"):
            parse_churn_spec("churn:events=explode:0@100")
        with pytest.raises(ValueError, match="is not an integer"):
            parse_churn_spec("churn:events=crash:x@100")
        with pytest.raises(ValueError, match="is not a number"):
            parse_churn_spec("churn:events=crash:0@soon")

    def test_trace_fleet_size_mismatch_rejected(self):
        trace = _trace(("crash", 0, 100.0), n=4)
        with pytest.raises(ValueError, match="rebuild the trace"):
            resolve_churn(trace, 8)

    def test_seeded_generation_drops_infeasible_events(self):
        # 5 crashes on a 2-device fleet: at most one can land.
        trace = resolve_churn("churn:crashes=5,seed=1", 2)
        assert trace.num_crashes == 1
        assert trace.live_at_end == 1


class TestFaultTraceQueries:
    def test_live_indices_apply_events_at_their_tick(self):
        trace = _trace(("crash", 2, 100.0), ("join", 2, 300.0))
        assert trace.live_indices(99.9) == (0, 1, 2, 3)
        assert trace.live_indices(100.0) == (0, 1, 3)
        assert trace.live_indices(300.0) == (0, 1, 2, 3)
        assert trace.live_fraction(200.0) == 0.75

    def test_crash_interval_is_open(self):
        trace = _trace(("crash", 1, 100.0))
        dead = frozenset({1})
        # Strictly inside kills; at either endpoint does not.
        assert trace.first_crash_touching(dead, 50.0, 150.0) is not None
        assert trace.first_crash_touching(dead, 100.0, 150.0) is None
        assert trace.first_crash_touching(dead, 50.0, 100.0) is None
        assert trace.first_crash_touching(frozenset({0}), 50.0, 150.0) is None

    def test_segments_and_next_event(self):
        trace = _trace(("crash", 0, 100.0), ("join", 0, 300.0))
        assert trace.segments(0.0, 400.0) == [
            (0.0, 100.0, (0, 1, 2, 3)),
            (100.0, 300.0, (1, 2, 3)),
            (300.0, 400.0, (0, 1, 2, 3)),
        ]
        assert trace.next_event_after(0.0) == 100.0
        assert trace.next_event_after(100.0) == 300.0
        assert trace.next_event_after(300.0) is None


class TestPolicyValidation:
    def test_retry_rejects_zero_max_attempts(self):
        with pytest.raises(ValueError, match="max_attempts must be >= 1"):
            RetryPolicy(max_attempts=0)

    def test_retry_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="backoff_ms must be >= 0"):
            RetryPolicy(backoff_ms=-1.0)

    def test_retry_rejects_timeout_below_backoff_base(self):
        with pytest.raises(ValueError, match="timeout_ms must be >= backoff_ms"):
            RetryPolicy(backoff_ms=50.0, timeout_ms=20.0)

    def test_retry_rejects_other_bad_fields(self):
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter_ms"):
            RetryPolicy(jitter_ms=-0.1)
        with pytest.raises(ValueError, match="seed"):
            RetryPolicy(seed=-1)

    def test_retry_delay_is_counter_deterministic(self):
        retry = RetryPolicy(backoff_ms=10.0, multiplier=2.0, jitter_ms=5.0, seed=3)
        d1 = retry.delay_ms(1, tenant_index=0, request_ordinal=7)
        assert d1 == retry.delay_ms(1, tenant_index=0, request_ordinal=7)
        assert 10.0 <= d1 < 15.0
        d2 = retry.delay_ms(2, tenant_index=0, request_ordinal=7)
        assert 20.0 <= d2 < 25.0
        assert d1 != retry.delay_ms(1, tenant_index=1, request_ordinal=7)

    def test_degradation_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="min_live_fraction"):
            DegradationPolicy(min_live_fraction=0.0)
        with pytest.raises(ValueError, match="min_live_fraction"):
            DegradationPolicy(min_live_fraction=1.5)

    def test_degradation_sheds_lowest_weight_first(self):
        policy = DegradationPolicy(min_live_fraction=0.9)
        # Healthy fleet: nothing shed.
        assert policy.shed_tenants([1.0, 3.0, 2.0], live_fraction=0.9) == ()
        # Half capacity: shed lightest tenants until kept weight fits.
        assert policy.shed_tenants([1.0, 3.0, 2.0], live_fraction=0.5) == (0, 2)
        # Always keeps at least one tenant, however deep the loss.
        assert policy.shed_tenants([1.0, 3.0, 2.0], live_fraction=0.01) == (0, 2)

    def test_degradation_plan_merges_adjacent_windows(self):
        trace = _trace(("crash", 0, 100.0), ("crash", 1, 200.0), ("join", 0, 400.0))
        policy = DegradationPolicy(min_live_fraction=0.9)
        # Every segment after 100ms stays below 0.9 live (3/4, 2/4, then 3/4
        # again after the join), so the adjacent windows merge into one.
        shed, windows = policy.plan(trace, [1.0, 2.0], start_s=0.0, horizon_s=1.0)
        assert windows == ((0.1, 1.0),)
        assert shed == (((0.1, 1.0),), ())
        # A healthier threshold splits at the join: only the 2/4 dip degrades.
        shed2, windows2 = DegradationPolicy(min_live_fraction=0.7).plan(
            trace, [1.0, 2.0], start_s=0.0, horizon_s=1.0
        )
        assert windows2 == ((0.2, 0.4),)
        assert shed2 == (((0.2, 0.4),), ())


class TestReplanAndResolve:
    @pytest.fixture(scope="class")
    def world(self):
        model = model_zoo.small_vgg(32)
        devices = make_cluster([("nano", 100), ("tx2", 100), ("nano", 100)])
        return model, devices

    def test_degrade_plan_keeps_untouched_plans(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 1)
        assert degrade_plan(plan, (0, 1, 2)) is plan
        assert degrade_plan(plan, (1, 2)) is plan

    def test_degrade_plan_fails_over_to_largest_live_share(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        failover = degrade_plan(plan, (1, 2))
        assert plan_devices(failover) == frozenset({1})
        assert failover.method.endswith("+failover")
        with pytest.raises(ValueError, match="no live devices"):
            degrade_plan(plan, ())

    def test_degrader_caches_by_identity_and_live_set(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        degrader = PlanDegrader()
        a = degrader.effective_plan(plan, (1, 2))
        assert degrader.effective_plan(plan, (1, 2)) is a
        assert degrader.effective_plan(plan, (0, 1, 2)) is plan

    def test_resolver_completes_first_attempt_with_raw_oracle_float(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        trace = _trace(("crash", 1, 100.0), n=3)
        oracle_lat = 7.123456789012345

        resolved = resolve_faulted_request(
            0.0, plan, lambda p, t: oracle_lat, trace, RetryPolicy(),
            PlanDegrader(), tenant_index=0, request_ordinal=0,
        )
        assert resolved.status == "completed"
        assert resolved.latency_ms == oracle_lat  # bit-equal, no round trip
        assert resolved.attempts == 1 and resolved.lost_attempts == 0

    def test_resolver_retries_across_a_mid_inference_crash(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        trace = _trace(("crash", 0, 5.0), n=3)
        retry = RetryPolicy(backoff_ms=10.0, jitter_ms=0.0)

        resolved = resolve_faulted_request(
            0.0, plan, lambda p, t: 20.0, trace, retry,
            PlanDegrader(), tenant_index=0, request_ordinal=0,
        )
        assert resolved.status == "completed"
        assert resolved.attempts == 2 and resolved.lost_attempts == 1
        # Attempt 2 starts at crash (5ms) + backoff (10ms) on a failover plan.
        assert resolved.retry_added_ms == 15.0
        assert resolved.latency_ms == 35.0
        assert plan_devices(resolved.plan) <= {1, 2}

    def test_resolver_abandons_at_max_attempts(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        # Both crashes land mid-flight for their attempt windows.
        trace = _trace(("crash", 0, 5.0), ("crash", 1, 30.0), n=3)
        retry = RetryPolicy(max_attempts=2, backoff_ms=10.0, jitter_ms=0.0)

        resolved = resolve_faulted_request(
            0.0, plan, lambda p, t: 20.0, trace, retry,
            PlanDegrader(), tenant_index=0, request_ordinal=0,
        )
        assert resolved.status == "abandoned"
        assert resolved.lost_attempts == 2
        assert resolved.abandon_s == 0.030  # the second crash tick

    def test_resolver_abandons_on_timeout(self, world):
        model, devices = world
        plan = DistributionPlan.single_device(model, devices, 0)
        trace = _trace(("crash", 0, 5.0), n=3)
        retry = RetryPolicy(
            max_attempts=5, backoff_ms=10.0, jitter_ms=0.0, timeout_ms=12.0
        )
        resolved = resolve_faulted_request(
            0.0, plan, lambda p, t: 20.0, trace, retry,
            PlanDegrader(), tenant_index=0, request_ordinal=0,
        )
        # Next attempt would start at 15ms > 12ms budget: abandoned at crash.
        assert resolved.status == "abandoned"
        assert resolved.abandon_s == 0.005

    def test_seeded_spec_round_trips_through_spec_property(self):
        spec = ChurnSpec(crashes=2, leaves=1, seed=5)
        assert parse_churn_spec(spec.spec) == spec
