"""Tests for the latency profiler."""

from __future__ import annotations

import pytest

from repro.devices.latency_model import layer_compute_latency_ms
from repro.devices.profiler import LatencyProfiler
from repro.devices.specs import DEVICE_CATALOG
from repro.nn import model_zoo


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


class TestLatencyProfiler:
    def test_noiseless_profile_matches_ground_truth(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["nano"], noise_std=0.0, repeats=1)
        layer = model.spatial_layers[0]
        point = profiler.measure_layer(layer, 10)
        assert point.latency_ms == pytest.approx(
            layer_compute_latency_ms(DEVICE_CATALOG["nano"], layer, 10)
        )

    def test_noisy_profile_is_close_to_ground_truth(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["nano"], noise_std=0.02, repeats=100, seed=0)
        layer = model.spatial_layers[0]
        truth = layer_compute_latency_ms(DEVICE_CATALOG["nano"], layer, 20)
        point = profiler.measure_layer(layer, 20)
        assert abs(point.latency_ms - truth) / truth < 0.05

    def test_profile_layer_full_granularity(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["tx2"], noise_std=0.0)
        layer = model.spatial_layers[0]
        points = profiler.profile_layer(layer)
        assert len(points) == layer.out_h
        assert [p.out_rows for p in points] == list(range(1, layer.out_h + 1))

    def test_profile_layer_height_subset(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["tx2"], noise_std=0.0)
        layer = model.spatial_layers[0]
        points = profiler.profile_layer(layer, heights=[1, 8, 999])
        assert [p.out_rows for p in points] == [1, 8]

    def test_profile_model_covers_spatial_layers(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["xavier"], noise_std=0.0)
        results = profiler.profile_model(model, heights_per_layer=6)
        assert set(results) == {l.name for l in model.spatial_layers}
        for points in results.values():
            assert 1 <= len(points) <= 6

    def test_dense_layer_single_point(self, model):
        profiler = LatencyProfiler(DEVICE_CATALOG["xavier"], noise_std=0.0)
        dense = model.head_layers[0]
        points = profiler.profile_layer(dense)
        assert len(points) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyProfiler(DEVICE_CATALOG["nano"], noise_std=-0.1)
        with pytest.raises(ValueError):
            LatencyProfiler(DEVICE_CATALOG["nano"], repeats=0)

    def test_profiles_are_reproducible(self, model):
        layer = model.spatial_layers[1]
        a = LatencyProfiler(DEVICE_CATALOG["nano"], seed=5).measure_layer(layer, 12)
        b = LatencyProfiler(DEVICE_CATALOG["nano"], seed=5).measure_layer(layer, 12)
        assert a.latency_ms == b.latency_ms
