"""Tests for the profile representations (table / linear / piecewise / kNN)."""

from __future__ import annotations

import pytest

from repro.devices.latency_model import layer_compute_latency_ms
from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import (
    DeviceCapability,
    KNNProfile,
    LinearProfile,
    PiecewiseLinearProfile,
    TabularProfile,
    estimate_capability,
)
from repro.devices.specs import DEVICE_CATALOG
from repro.nn import model_zoo


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def points(model):
    profiler = LatencyProfiler(DEVICE_CATALOG["nano"], noise_std=0.0)
    return profiler.profile_model(model, heights_per_layer=None)


class TestTabularProfile:
    def test_exact_on_measured_heights(self, model, points):
        profile = TabularProfile.from_points(points)
        layer = model.spatial_layers[0]
        truth = layer_compute_latency_ms(DEVICE_CATALOG["nano"], layer, 7)
        assert profile.latency_ms(layer.name, 7) == pytest.approx(truth, rel=1e-6)

    def test_zero_rows_free(self, points):
        profile = TabularProfile.from_points(points)
        assert profile.latency_ms(next(iter(points)), 0) == 0.0

    def test_unknown_layer_raises(self, points):
        profile = TabularProfile.from_points(points)
        with pytest.raises(KeyError):
            profile.latency_ms("missing_layer", 5)

    def test_layers_listing(self, model, points):
        profile = TabularProfile.from_points(points)
        assert set(profile.layers()) == {l.name for l in model.spatial_layers}

    def test_volume_latency_sums(self, model, points):
        profile = TabularProfile.from_points(points)
        names = [l.name for l in model.spatial_layers[:3]]
        total = profile.volume_latency_ms([(n, 8) for n in names])
        assert total == pytest.approx(sum(profile.latency_ms(n, 8) for n in names))


class TestLinearProfile:
    def test_linear_fit_misses_staircase(self, model, points):
        """The linear fit smooths out the tile staircase — the systematic
        error the linear-model baselines make."""
        tabular = TabularProfile.from_points(points)
        linear = LinearProfile.from_points(points)
        layer = model.spatial_layers[0]
        errors = [
            abs(linear.latency_ms(layer.name, r) - tabular.latency_ms(layer.name, r))
            for r in range(1, layer.out_h + 1)
        ]
        assert max(errors) > 0.0

    def test_prediction_non_negative(self, points):
        linear = LinearProfile.from_points(points)
        for name in linear.layers():
            assert linear.latency_ms(name, 1) >= 0.0

    def test_unknown_layer(self, points):
        linear = LinearProfile.from_points(points)
        with pytest.raises(KeyError):
            linear.latency_ms("nope", 3)


class TestPiecewiseAndKNN:
    def test_piecewise_reduces_to_knots(self, points):
        profile = PiecewiseLinearProfile.from_points(points, num_knots=4)
        for heights, _ in profile.knots.values():
            assert len(heights) <= 4

    def test_piecewise_needs_two_knots(self, points):
        with pytest.raises(ValueError):
            PiecewiseLinearProfile.from_points(points, num_knots=1)

    def test_knn_interpolates_close_to_table(self, model, points):
        tabular = TabularProfile.from_points(points)
        knn = KNNProfile.from_points(points, k=1)
        layer = model.spatial_layers[1]
        assert knn.latency_ms(layer.name, 9) == pytest.approx(
            tabular.latency_ms(layer.name, 9), rel=1e-6
        )

    def test_knn_invalid_k(self, points):
        with pytest.raises(ValueError):
            KNNProfile.from_points(points, k=0)


class TestCapability:
    def test_capability_latency_inverse(self):
        cap = DeviceCapability("nano", macs_per_second=1e9)
        assert cap.latency_ms(1e9) == pytest.approx(1000.0)
        assert cap.latency_ms(0) == 0.0

    def test_estimate_capability_orders_devices(self, model):
        caps = {}
        for name in ("nano", "xavier"):
            profiler = LatencyProfiler(DEVICE_CATALOG[name], noise_std=0.0)
            pts = profiler.profile_model(model, heights_per_layer=8)
            caps[name] = estimate_capability(model, TabularProfile.from_points(pts), name)
        assert caps["xavier"].macs_per_second > caps["nano"].macs_per_second

    def test_estimate_capability_below_peak(self, model, points):
        """Effective capability includes overheads, so it is below the peak."""
        cap = estimate_capability(model, TabularProfile.from_points(points), "nano")
        assert cap.macs_per_second < DEVICE_CATALOG["nano"].peak_macs_per_s


class TestBatchLookups:
    @pytest.mark.parametrize(
        "representation",
        [TabularProfile, LinearProfile, PiecewiseLinearProfile, KNNProfile],
    )
    def test_batch_matches_scalar_bit_for_bit(self, model, points, representation):
        """latency_ms_batch is element-wise identical to latency_ms, with
        non-positive rows mapped to exactly 0.0 in every representation
        (KNN exercises the base-class fallback)."""
        import numpy as np

        profile = representation.from_points(points)
        layer = model.spatial_layers[1]
        rows = np.array([-3, 0, 1, 2, 7, 13, layer.out_h])
        batch = profile.latency_ms_batch(layer.name, rows)
        expected = np.array([profile.latency_ms(layer.name, int(r)) for r in rows])
        assert np.array_equal(batch, expected)
        assert batch[0] == 0.0 and batch[1] == 0.0

    def test_batch_unknown_layer_raises(self, points):
        import numpy as np

        profile = TabularProfile.from_points(points)
        with pytest.raises(KeyError):
            profile.latency_ms_batch("no-such-layer", np.array([1, 2]))
