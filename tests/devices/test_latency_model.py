"""Tests for the nonlinear compute-latency model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.latency_model import (
    ComputeLatencyModel,
    layer_compute_latency_ms,
    part_compute_latency_ms,
    volume_compute_latency_ms,
)
from repro.devices.specs import DEVICE_CATALOG
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision, split_volume


@pytest.fixture(scope="module")
def vgg():
    return model_zoo.vgg16()


@pytest.fixture(scope="module")
def conv(vgg):
    return vgg.spatial_layers[3]  # conv2_1 at 112x112 (compute-bound)


class TestLayerLatency:
    def test_zero_rows_is_free(self, conv):
        assert layer_compute_latency_ms(DEVICE_CATALOG["nano"], conv, 0) == 0.0

    def test_full_layer_default(self, conv):
        full = layer_compute_latency_ms(DEVICE_CATALOG["nano"], conv)
        explicit = layer_compute_latency_ms(DEVICE_CATALOG["nano"], conv, conv.out_h)
        assert full == pytest.approx(explicit)

    def test_monotone_nondecreasing_in_rows(self, conv):
        dtype = DEVICE_CATALOG["nano"]
        lats = [layer_compute_latency_ms(dtype, conv, r) for r in range(1, conv.out_h + 1)]
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))

    def test_faster_device_is_faster(self, vgg, conv):
        nano = layer_compute_latency_ms(DEVICE_CATALOG["nano"], conv)
        xavier = layer_compute_latency_ms(DEVICE_CATALOG["xavier"], conv)
        assert xavier < nano

    def test_staircase_on_gpu(self, conv):
        """Latency is flat within a tile and jumps at tile boundaries."""
        dtype = DEVICE_CATALOG["xavier"]
        tile = dtype.tile_rows
        inside = layer_compute_latency_ms(dtype, conv, tile - 1)
        at_tile = layer_compute_latency_ms(dtype, conv, tile)
        just_over = layer_compute_latency_ms(dtype, conv, tile + 1)
        assert inside == pytest.approx(at_tile)
        assert just_over > at_tile

    def test_cpu_has_no_staircase(self, conv):
        dtype = DEVICE_CATALOG["pi3"]
        l5 = layer_compute_latency_ms(dtype, conv, 5)
        l6 = layer_compute_latency_ms(dtype, conv, 6)
        assert l6 > l5

    def test_launch_overhead_floor(self, conv):
        dtype = DEVICE_CATALOG["xavier"]
        assert layer_compute_latency_ms(dtype, conv, 1) >= dtype.launch_overhead_ms

    def test_nonlinearity_vs_linear_model(self, conv):
        """Half the rows costs clearly more than half the full-layer latency."""
        dtype = DEVICE_CATALOG["nano"]
        full = layer_compute_latency_ms(dtype, conv, conv.out_h)
        quarter = layer_compute_latency_ms(dtype, conv, max(conv.out_h // 4, 1))
        assert quarter > full / 4

    def test_negative_rows_rejected(self, conv):
        with pytest.raises(ValueError):
            layer_compute_latency_ms(DEVICE_CATALOG["nano"], conv, -1)

    @given(rows=st.integers(1, 112))
    @settings(max_examples=20)
    def test_latency_always_positive(self, rows, conv):
        assert layer_compute_latency_ms(DEVICE_CATALOG["tx2"], conv, rows) > 0


class TestVolumeAndPartLatency:
    def test_volume_latency_sums_layers(self, vgg):
        dtype = DEVICE_CATALOG["xavier"]
        volume = vgg.volume(0, 3)
        full = volume_compute_latency_ms(dtype, list(volume.layers), volume.output_height)
        manual = sum(
            layer_compute_latency_ms(dtype, layer) for layer in volume.layers
        )
        assert full == pytest.approx(manual, rel=0.05)

    def test_zero_rows_volume(self, vgg):
        volume = vgg.volume(0, 3)
        assert volume_compute_latency_ms(DEVICE_CATALOG["nano"], list(volume.layers), 0) == 0.0

    def test_part_latency_consistent_with_volume(self, vgg):
        dtype = DEVICE_CATALOG["nano"]
        volume = vgg.volume(0, 3)
        decision = SplitDecision.single_device(0, 2, volume.output_height)
        parts = split_volume(volume, decision)
        via_part = part_compute_latency_ms(dtype, parts[0], volume)
        via_volume = volume_compute_latency_ms(dtype, list(volume.layers), volume.output_height)
        assert via_part == pytest.approx(via_volume, rel=1e-6)
        assert part_compute_latency_ms(dtype, parts[1], volume) == 0.0

    def test_split_part_sum_exceeds_whole(self, vgg):
        """Fused splitting recomputes halo rows, so parts cost more in total."""
        dtype = DEVICE_CATALOG["xavier"]
        volume = vgg.volume(6, 10)
        decision = SplitDecision.equal(4, volume.output_height)
        parts = split_volume(volume, decision)
        whole = volume_compute_latency_ms(dtype, list(volume.layers), volume.output_height)
        split_total = sum(part_compute_latency_ms(dtype, p, volume) for p in parts)
        assert split_total > whole


class TestComputeLatencyModel:
    def test_full_model_ordering_matches_paper(self, vgg):
        layers = vgg.spatial_layers
        latencies = {
            name: ComputeLatencyModel(DEVICE_CATALOG[name]).full_model(layers)
            for name in ("pi3", "nano", "tx2", "xavier")
        }
        assert latencies["xavier"] < latencies["tx2"] < latencies["nano"] < latencies["pi3"]
        # Pi3 is more than an order of magnitude slower than any Jetson.
        assert latencies["pi3"] > 10 * latencies["nano"]

    def test_vgg16_absolute_calibration(self, vgg):
        """Backbone latencies stay in the calibrated ballpark (see DESIGN.md)."""
        layers = vgg.spatial_layers
        xavier = ComputeLatencyModel(DEVICE_CATALOG["xavier"]).full_model(layers)
        nano = ComputeLatencyModel(DEVICE_CATALOG["nano"]).full_model(layers)
        assert 30 < xavier < 90
        assert 180 < nano < 450

    def test_wrapper_methods_agree(self, vgg):
        model = ComputeLatencyModel(DEVICE_CATALOG["tx2"])
        conv = vgg.spatial_layers[0]
        assert model.layer(conv, 10) == pytest.approx(
            layer_compute_latency_ms(DEVICE_CATALOG["tx2"], conv, 10)
        )
