"""Tests for the device catalogue and cluster construction."""

from __future__ import annotations

import pytest

from repro.devices.specs import DEVICE_CATALOG, DeviceInstance, DeviceType, get_device_type, make_cluster


class TestCatalog:
    def test_contains_all_paper_devices(self):
        assert set(DEVICE_CATALOG) == {"pi3", "nano", "tx2", "xavier"}

    def test_ordering_of_compute_power(self):
        # Paper: Pi3 << Nano < TX2 < Xavier.
        assert (
            DEVICE_CATALOG["pi3"].peak_macs_per_s
            < DEVICE_CATALOG["nano"].peak_macs_per_s
            < DEVICE_CATALOG["tx2"].peak_macs_per_s
            < DEVICE_CATALOG["xavier"].peak_macs_per_s
        )

    def test_pi3_is_cpu_others_gpu(self):
        assert DEVICE_CATALOG["pi3"].kind == "cpu"
        for name in ("nano", "tx2", "xavier"):
            assert DEVICE_CATALOG[name].kind == "gpu"

    def test_get_device_type_case_insensitive(self):
        assert get_device_type("XAVIER") is DEVICE_CATALOG["xavier"]

    def test_get_device_type_unknown(self):
        with pytest.raises(KeyError):
            get_device_type("orin")

    def test_device_type_validation(self):
        with pytest.raises(ValueError):
            DeviceType(
                name="bad", kind="tpu", peak_macs_per_s=1, tile_rows=1,
                launch_overhead_ms=0, mem_bandwidth_bytes_per_s=1,
            )
        with pytest.raises(ValueError):
            DeviceType(
                name="bad", kind="gpu", peak_macs_per_s=-1, tile_rows=1,
                launch_overhead_ms=0, mem_bandwidth_bytes_per_s=1,
            )


class TestDeviceInstance:
    def test_type_name(self):
        device = DeviceInstance("x0", DEVICE_CATALOG["xavier"], 300)
        assert device.type_name == "xavier"

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DeviceInstance("x0", DEVICE_CATALOG["xavier"], -1)

    def test_str_mentions_type_and_bandwidth(self):
        device = DeviceInstance("x0", DEVICE_CATALOG["nano"], 50)
        assert "nano" in str(device) and "50" in str(device)


class TestMakeCluster:
    def test_ids_are_unique_and_ordered(self):
        cluster = make_cluster([("xavier", 300), ("nano", 50), ("nano", 50)])
        assert [d.device_id for d in cluster] == ["xavier0", "nano1", "nano2"]

    def test_tuple_and_string_entries(self):
        cluster = make_cluster(["xavier", ("nano",), ("tx2", 100)], default_bandwidth_mbps=200)
        assert cluster[0].bandwidth_mbps == 200
        assert cluster[1].bandwidth_mbps == 200
        assert cluster[2].bandwidth_mbps == 100

    def test_sixteen_device_cluster(self):
        spec = [("pi3", 50), ("nano", 100), ("tx2", 200), ("xavier", 300)] * 4
        cluster = make_cluster(spec)
        assert len(cluster) == 16
        assert len({d.device_id for d in cluster}) == 16

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            make_cluster([("gpu9000", 10)])
