"""Behavioural tests for the multi-tenant serving simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    TraceArrivals,
)


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture()
def cluster(model):
    devices = make_cluster([("nano", 100), ("nano", 100)])
    network = NetworkModel.constant_from_devices(devices)
    evaluator = BatchPlanEvaluator(devices, network)
    plan = DistributionPlan.single_device(model, devices, 0)
    return devices, network, evaluator, plan


def _service_ms(evaluator, plan):
    return evaluator.evaluate(plan).end_to_end_ms


class TestOpenLoop:
    def test_light_load_has_no_queueing(self, cluster):
        _, _, evaluator, plan = cluster
        service_ms = _service_ms(evaluator, plan)
        # Arrivals far slower than the service rate: responses equal service.
        tenant = TenantSpec(
            "light", plan, traffic=TraceArrivals(offsets_s=(0.0, 1.0, 2.0, 3.0)),
            slo=SLO(deadline_ms=10 * service_ms),
        )
        report = ServingSimulator(evaluator).run([tenant], duration_s=5.0)
        outcome = report.tenant("light")
        assert outcome.num_completed == 4
        assert np.allclose(outcome.response_ms, service_ms)
        assert np.allclose(outcome.start_s, outcome.arrival_s)
        assert outcome.deadline_miss_rate == 0.0
        assert outcome.max_queue_depth == 1

    def test_burst_queues_and_misses_deadlines(self, cluster):
        _, _, evaluator, plan = cluster
        service_ms = _service_ms(evaluator, plan)
        # Four simultaneous arrivals: positions 2..4 wait behind the head.
        tenant = TenantSpec(
            "burst", plan, traffic=TraceArrivals(offsets_s=(0.0, 0.0, 0.0, 0.0)),
            slo=SLO(deadline_ms=1.5 * service_ms),
        )
        report = ServingSimulator(evaluator).run([tenant], duration_s=1.0)
        outcome = report.tenant("burst")
        assert outcome.num_completed == 4
        expected = service_ms * np.arange(1, 5)  # FIFO: k-th waits k-1 services
        assert np.allclose(outcome.response_ms, expected)
        assert outcome.max_queue_depth == 4
        # Responses are 1x..4x the service time against a 1.5x deadline.
        assert outcome.deadline_missed.tolist() == [False, True, True, True]
        assert outcome.deadline_miss_rate == 0.75
        assert not outcome.slo_satisfied
        assert report.slo_violations == ["burst"]

    def test_admission_control_rejects_on_full_queue(self, cluster):
        _, _, evaluator, plan = cluster
        tenant = TenantSpec(
            "bounded", plan, traffic=TraceArrivals(offsets_s=(0.0, 0.0, 0.0, 0.0, 0.0)),
            queue_capacity=2,
        )
        report = ServingSimulator(evaluator).run([tenant], duration_s=1.0)
        outcome = report.tenant("bounded")
        assert outcome.num_arrivals == 5
        assert outcome.num_rejected == 3
        assert outcome.num_completed == 2
        assert outcome.num_admitted == outcome.num_completed
        assert outcome.rejected_times_s == [0.0, 0.0, 0.0]

    def test_drains_admitted_requests_past_the_horizon(self, cluster):
        _, _, evaluator, plan = cluster
        service_ms = _service_ms(evaluator, plan)
        # One arrival right before the horizon: still served to completion.
        tenant = TenantSpec("drain", plan, traffic=TraceArrivals(offsets_s=(0.99,)))
        report = ServingSimulator(evaluator).run([tenant], duration_s=1.0)
        outcome = report.tenant("drain")
        assert outcome.num_completed == 1
        assert outcome.completion_s[0] == pytest.approx(0.99 + service_ms / 1000.0)

    def test_saturating_poisson_builds_a_queue(self, cluster):
        _, _, evaluator, plan = cluster
        service_ms = _service_ms(evaluator, plan)
        rate = 3.0 * 1000.0 / service_ms  # 3x the service rate
        tenant = TenantSpec(
            "hot", plan, traffic=PoissonArrivals(rate_rps=rate, seed=4),
            slo=SLO(deadline_ms=2 * service_ms),
        )
        report = ServingSimulator(evaluator).run([tenant], duration_s=2.0)
        outcome = report.tenant("hot")
        assert outcome.max_queue_depth > 5
        assert outcome.deadline_miss_rate > 0.5
        # Response percentiles are ordered and the tail reflects queueing.
        assert outcome.p50_response_ms <= outcome.p95_response_ms <= outcome.p99_response_ms
        assert outcome.p99_response_ms > 2 * service_ms

    def test_max_requests_caps_an_open_loop_tenant(self, cluster):
        _, _, evaluator, plan = cluster
        tenant = TenantSpec(
            "capped", plan, traffic=PoissonArrivals(rate_rps=50.0, seed=1), max_requests=3
        )
        report = ServingSimulator(evaluator).run([tenant], duration_s=5.0)
        outcome = report.tenant("capped")
        assert outcome.num_completed == 3
        # The full offered load stays on the record: everything not served —
        # queued at the cap or still to arrive — is counted as rejected, and
        # the queue-depth series drains to zero.
        offered = PoissonArrivals(rate_rps=50.0, seed=1).arrival_times(5.0).size
        assert outcome.num_arrivals == offered
        assert outcome.num_rejected == offered - 3
        assert outcome.num_admitted == outcome.num_completed
        assert outcome.queue_depth_series[-1, 1] == 0

    def test_closed_loop_knobs_rejected_for_open_loop(self, cluster):
        _, _, _, plan = cluster
        with pytest.raises(ValueError, match="closed-loop knobs"):
            TenantSpec("t", plan, traffic=PoissonArrivals(1.0), gap_ms=500.0)
        with pytest.raises(ValueError, match="closed-loop knobs"):
            TenantSpec("t", plan, traffic=PoissonArrivals(1.0), max_duration_s=1.0)


class TestMultiTenant:
    def test_tenants_are_independent_streams(self, cluster, model):
        devices, _, evaluator, plan = cluster
        other = DistributionPlan.single_device(model, devices, 1, method="other")
        spec_a = TenantSpec("a", plan, traffic=PoissonArrivals(3.0, seed=1))
        spec_b = TenantSpec("b", other, traffic=PoissonArrivals(7.0, seed=2))
        together = ServingSimulator(evaluator).run([spec_a, spec_b], duration_s=10.0)
        alone_a = ServingSimulator(evaluator).run([spec_a], duration_s=10.0)
        alone_b = ServingSimulator(evaluator).run([spec_b], duration_s=10.0)
        for name, alone in [("a", alone_a), ("b", alone_b)]:
            x, y = together.tenant(name), alone.tenant(name)
            assert np.array_equal(x.completion_s, y.completion_s)
            assert np.array_equal(x.latency_ms, y.latency_ms)

    def test_mixed_open_and_closed_loop_tenants(self, cluster):
        _, _, evaluator, plan = cluster
        open_t = TenantSpec("open", plan, traffic=PoissonArrivals(5.0, seed=3))
        closed_t = TenantSpec("closed", plan, traffic=None, max_requests=7, gap_ms=50.0)
        report = ServingSimulator(evaluator).run([open_t, closed_t], duration_s=3.0)
        closed = report.tenant("closed")
        assert closed.num_completed == 7
        # Closed loop: each request starts when the previous finished + gap.
        service_s = closed.latency_ms[0] / 1000.0
        assert np.allclose(np.diff(closed.start_s), service_s + 0.05)

    def test_aggregate_metrics(self, cluster):
        _, _, evaluator, plan = cluster
        specs = [
            TenantSpec("a", plan, traffic=PoissonArrivals(4.0, seed=1), slo=SLO(1000.0)),
            TenantSpec("b", plan, traffic=PoissonArrivals(4.0, seed=2), slo=SLO(1000.0)),
        ]
        report = ServingSimulator(evaluator).run(specs, duration_s=5.0)
        assert report.total_completed == sum(t.num_completed for t in report.tenants)
        assert report.throughput_rps > 0
        assert report.epochs > 0
        assert report.response_percentile_ms(50) <= report.response_percentile_ms(99)
        assert report.deadline_miss_rate == 0.0
        assert report.slo_violations == []


class TestValidation:
    def test_open_loop_needs_duration(self, cluster):
        _, _, evaluator, plan = cluster
        tenant = TenantSpec("t", plan, traffic=PoissonArrivals(1.0))
        with pytest.raises(ValueError, match="duration_s"):
            ServingSimulator(evaluator).run([tenant])

    def test_closed_loop_needs_max_requests(self, cluster):
        _, _, _, plan = cluster
        with pytest.raises(ValueError, match="max_requests"):
            TenantSpec("t", plan, traffic=None)

    def test_duplicate_names_rejected(self, cluster):
        _, _, evaluator, plan = cluster
        tenants = [
            TenantSpec("t", plan, traffic=PoissonArrivals(1.0)),
            TenantSpec("t", plan, traffic=PoissonArrivals(1.0, seed=1)),
        ]
        with pytest.raises(ValueError, match="unique"):
            ServingSimulator(evaluator).run(tenants, duration_s=1.0)

    def test_batched_mode_needs_a_batch_evaluator(self, cluster, model):
        devices, network, _, plan = cluster
        scalar = PlanEvaluator(devices, network)
        tenant = TenantSpec("t", plan, traffic=PoissonArrivals(1.0))
        with pytest.raises(TypeError, match="evaluate_plans"):
            ServingSimulator(scalar).run([tenant], duration_s=1.0)
        # The reference loop accepts a scalar evaluator.
        report = ServingSimulator(scalar).run([tenant], duration_s=1.0, mode="reference")
        assert report.mode == "reference"

    def test_plan_device_count_must_match(self, cluster, model):
        _, _, evaluator, _ = cluster
        trio = make_cluster([("nano", 100)] * 3)
        plan3 = DistributionPlan.single_device(model, trio, 0)
        tenant = TenantSpec("t", plan3, traffic=PoissonArrivals(1.0))
        with pytest.raises(ValueError, match="devices"):
            ServingSimulator(evaluator).run([tenant], duration_s=1.0)

    def test_hook_and_factory_are_mutually_exclusive(self, cluster):
        _, _, _, plan = cluster
        hook = lambda t, i, p, h: None  # noqa: E731
        with pytest.raises(ValueError, match="not both"):
            TenantSpec(
                "t", plan, traffic=PoissonArrivals(1.0),
                adaptation_hook=hook, hook_factory=lambda: hook,
            )


class TestControllerUnderLoad:
    def test_online_distredge_controller_replans_a_tenant(self, fast_ddpg_config, model):
        """The Section V-F controller drives a tenant's plan while another
        tenant keeps being served — replanning *under* load."""
        from repro.core.distredge import DistrEdge, DistrEdgeConfig
        from repro.core.online import OnlineDistrEdgeController
        from repro.core.osds import OSDSConfig

        devices = make_cluster([("nano", 70), ("nano", 70)])
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=2)
        distredge = DistrEdge(
            DistrEdgeConfig(
                num_random_splits=5,
                osds=OSDSConfig(max_episodes=4, ddpg=fast_ddpg_config, seed=0),
                seed=0,
            )
        )
        controller = OnlineDistrEdgeController(
            model=model,
            devices=devices,
            network=network,
            distredge=distredge,
            decision_interval_s=5.0,
            replan_threshold=10.0,
        )
        initial = controller.initial_plan(0.0)
        evaluator = BatchPlanEvaluator(devices, network)
        tenants = [
            TenantSpec(
                "adaptive",
                initial,
                traffic=PoissonArrivals(rate_rps=0.5, seed=3),
                adaptation_hook=controller.adaptation_hook,
            ),
            TenantSpec("static", DistributionPlan.single_device(model, devices, 1),
                       traffic=PoissonArrivals(rate_rps=0.5, seed=4)),
        ]
        report = ServingSimulator(evaluator).run(tenants, duration_s=60.0)
        # The controller refreshed its decisions mid-stream (decision_log) and
        # both tenants were served.
        assert controller.decision_log
        assert report.tenant("adaptive").num_completed > 0
        assert report.tenant("static").num_completed > 0


class TestStreamingSpecialCase:
    """StreamingSimulator must behave exactly like the historical loop."""

    def test_matches_handrolled_closed_loop(self, cluster):
        from repro.runtime.streaming import StreamingSimulator

        _, _, evaluator, plan = cluster
        gap_ms = 40.0
        result = StreamingSimulator(evaluator, extra_gap_ms=gap_ms).run(plan, num_images=6)
        # Hand-rolled reference: the pre-serving per-image loop.
        latencies, starts, t = [], [], 0.0
        for _ in range(6):
            r = evaluator.evaluate(plan, t_seconds=t)
            latencies.append(r.end_to_end_ms)
            starts.append(t)
            t += (r.end_to_end_ms + gap_ms) / 1000.0
        assert np.array_equal(result.per_image_latency_ms, np.asarray(latencies))
        assert np.array_equal(result.image_start_s, np.asarray(starts))
        assert result.total_time_s == t
