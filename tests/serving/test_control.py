"""Unit semantics of the capacity planner and the fleet autoscaler.

These tests drive :mod:`repro.serving.control` through fake probe/window
runners (the module's only dependency on the serving stack is the report
shape), so they pin the search/decision logic itself: binary == exhaustive
under monotone feasibility, probe budgets, memoization, scaling triggers
and the knee calibration.  End-to-end runs through the harness are covered
by the control-plane benchmark gate.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serving.control import (
    AutoscalerConfig,
    CapacityPlanConfig,
    CapacityPlanner,
    FleetAutoscaler,
    effective_miss_rate,
)


def fake_report(
    missed=0,
    denied=0,
    abandoned=0,
    shed=0,
    completed=100,
    arrivals=None,
    busy_ms=None,
    rps=10.0,
    with_slo=True,
):
    """The minimal report surface the control plane reads."""
    tenant = SimpleNamespace(
        slo=SimpleNamespace(deadline_ms=100.0) if with_slo else None,
        deadline_missed=np.zeros(completed, dtype=bool),
        num_denied=denied,
        num_abandoned=abandoned,
        num_shed=shed,
        num_completed=completed,
    )
    tenant.deadline_missed[:missed] = True
    fleet = None
    if busy_ms is not None:
        fleet = SimpleNamespace(compute_busy_ms=np.asarray(busy_ms, dtype=float))
    return SimpleNamespace(
        tenants=[tenant],
        total_arrivals=arrivals if arrivals is not None else completed + denied,
        total_completed=completed,
        total_denied=denied,
        throughput_rps=rps,
        fleet=fleet,
        faults=None,
    )


# --------------------------------------------------------------------- #
# effective miss rate
# --------------------------------------------------------------------- #


def test_effective_miss_rate_counts_denials_as_misses():
    assert effective_miss_rate(fake_report(missed=0, denied=0)) == 0.0
    assert effective_miss_rate(fake_report(missed=10, denied=0)) == pytest.approx(0.1)
    # 100 completed + 25 denied offered; 10 missed + 25 denied "bad".
    assert effective_miss_rate(fake_report(missed=10, denied=25)) == pytest.approx(
        35 / 125
    )


def test_effective_miss_rate_counts_abandons_and_sheds_as_misses():
    # Churn losses count exactly like denials: 100 completed + 5 abandoned +
    # 20 shed offered; 10 missed + 25 churn-lost "bad".
    assert effective_miss_rate(
        fake_report(missed=10, abandoned=5, shed=20)
    ) == pytest.approx(35 / 125)


def test_effective_miss_rate_ignores_slo_free_tenants():
    report = fake_report(missed=50, denied=50, with_slo=False)
    assert effective_miss_rate(report) == 0.0


# --------------------------------------------------------------------- #
# capacity planner
# --------------------------------------------------------------------- #


def _monotone_runner(threshold, log):
    """Feasible (zero miss) at and above ``threshold`` devices."""

    def run(n):
        log.append(n)
        shortfall = max(0, threshold - n)
        return fake_report(missed=10 * shortfall, completed=100)

    return run


@pytest.mark.parametrize("threshold", [1, 3, 5, 8])
def test_binary_search_matches_exhaustive(threshold):
    log_a, log_b = [], []
    cfg = CapacityPlanConfig(min_devices=1, max_devices=8, target_miss_rate=0.0)
    binary = CapacityPlanner(_monotone_runner(threshold, log_a), cfg).plan()
    exhaustive = CapacityPlanner(_monotone_runner(threshold, log_b), cfg).exhaustive()
    assert binary.min_feasible_devices == threshold
    assert exhaustive.min_feasible_devices == threshold
    assert binary.strategy == "binary"
    assert exhaustive.strategy == "exhaustive"


def test_binary_search_respects_probe_budget():
    for span_max in (1, 2, 5, 8, 31, 32, 100):
        cfg = CapacityPlanConfig(min_devices=1, max_devices=span_max)
        for threshold in (1, max(1, span_max // 2), span_max):
            log = []
            planner = CapacityPlanner(_monotone_runner(threshold, log), cfg)
            plan = planner.plan()
            assert plan.min_feasible_devices == threshold
            assert planner.probe_runs <= cfg.max_probes, (
                f"span {cfg.span}: {planner.probe_runs} runs > "
                f"budget {cfg.max_probes}"
            )


def test_infeasible_range_returns_none():
    log = []
    cfg = CapacityPlanConfig(min_devices=1, max_devices=4, target_miss_rate=0.0)
    planner = CapacityPlanner(_monotone_runner(10, log), cfg)
    plan = planner.plan()
    assert plan.min_feasible_devices is None
    # One probe at the top of the range settles it.
    assert log == [4]


def test_probe_memoization_spans_strategies():
    log = []
    cfg = CapacityPlanConfig(min_devices=1, max_devices=8)
    planner = CapacityPlanner(_monotone_runner(3, log), cfg)
    planner.plan()
    runs_after_plan = planner.probe_runs
    planner.exhaustive()
    planner.plan()
    # Exhaustive only added sizes the binary search skipped; the second
    # plan() re-ran nothing.
    assert planner.probe_runs == len(set(log))
    assert runs_after_plan <= planner.probe_runs <= cfg.span


def test_probe_outside_range_rejected():
    cfg = CapacityPlanConfig(min_devices=2, max_devices=4)
    planner = CapacityPlanner(_monotone_runner(2, []), cfg)
    with pytest.raises(ValueError):
        planner.probe(1)
    with pytest.raises(ValueError):
        planner.probe(5)


def test_plan_config_validation():
    with pytest.raises(ValueError):
        CapacityPlanConfig(min_devices=0, max_devices=4)
    with pytest.raises(ValueError):
        CapacityPlanConfig(min_devices=5, max_devices=4)
    with pytest.raises(ValueError):
        CapacityPlanConfig(min_devices=1, max_devices=4, target_miss_rate=1.5)
    cfg = CapacityPlanConfig(min_devices=3, max_devices=3)
    assert cfg.span == 1 and cfg.max_probes == 1


def test_plan_to_dict_round_trips_probe_log():
    cfg = CapacityPlanConfig(min_devices=1, max_devices=8)
    plan = CapacityPlanner(_monotone_runner(3, []), cfg).plan()
    payload = plan.to_dict()
    assert payload["min_feasible_devices"] == 3
    assert payload["strategy"] == "binary"
    assert payload["num_probe_runs"] == len(payload["probes"])
    assert {p["num_devices"] for p in payload["probes"]} >= {3, 8}


# --------------------------------------------------------------------- #
# autoscaler
# --------------------------------------------------------------------- #


def _cfg(**kwargs):
    defaults = dict(
        min_devices=1,
        max_devices=8,
        window_s=10.0,
        low_utilization=0.3,
        high_utilization=0.8,
    )
    defaults.update(kwargs)
    return AutoscalerConfig(**defaults)


def _util_report(utilization, n, arrivals=100, missed=0, denied=0):
    busy = [utilization * 10.0 * 1000.0] * n  # window_s = 10
    return fake_report(
        missed=missed, denied=denied, arrivals=arrivals, busy_ms=busy
    )


def test_autoscaler_grow_shrink_hold():
    scaler = FleetAutoscaler(lambda n, w: None, _cfg())
    assert scaler.decide(_util_report(0.9, 4), 4) == ("grow", 5)
    assert scaler.decide(_util_report(0.1, 4), 4) == ("shrink", 3)
    assert scaler.decide(_util_report(0.5, 4), 4) == ("hold", 4)
    # Miss pressure grows even inside the utilisation band.
    assert scaler.decide(_util_report(0.5, 4, missed=10), 4) == ("grow", 5)
    # Denials count as misses for the grow trigger too.
    assert scaler.decide(_util_report(0.5, 4, denied=10), 4) == ("grow", 5)


def test_autoscaler_clamps_to_range():
    scaler = FleetAutoscaler(lambda n, w: None, _cfg(min_devices=2, max_devices=4))
    assert scaler.decide(_util_report(0.9, 4), 4) == ("hold", 4)
    assert scaler.decide(_util_report(0.1, 2), 2) == ("hold", 2)


def test_autoscaler_capacity_hint_jumps():
    cfg = _cfg(capacity_per_device_rps=5.0)
    scaler = FleetAutoscaler(lambda n, w: None, cfg)
    # 100 arrivals / 10 s = 10 rps -> ceil(10 / 5) = 2 devices.
    assert scaler.decide(_util_report(0.9, 8, arrivals=100), 8) == ("shrink", 2)
    assert scaler.decide(_util_report(0.1, 1, arrivals=350), 1) == ("grow", 7)
    assert scaler.decide(_util_report(0.5, 2, arrivals=100), 2) == ("hold", 2)


def test_from_knee_calibration():
    cfg = AutoscalerConfig.from_knee(
        knee_rps=20.0, knee_devices=4, min_devices=1, max_devices=8, window_s=10.0
    )
    assert cfg.capacity_per_device_rps == pytest.approx(5.0)
    with pytest.raises(ValueError):
        AutoscalerConfig.from_knee(
            knee_rps=0.0, knee_devices=4, min_devices=1, max_devices=8, window_s=10.0
        )
    with pytest.raises(ValueError):
        AutoscalerConfig.from_knee(
            knee_rps=20.0, knee_devices=0, min_devices=1, max_devices=8, window_s=10.0
        )


def test_autoscaler_run_trajectory():
    utilizations = [0.95, 0.95, 0.5, 0.1, 0.1]

    def run_window(n, w):
        return _util_report(utilizations[w], n)

    report = FleetAutoscaler(run_window, _cfg()).run(5, initial_devices=2)
    assert report.device_trajectory == [2, 3, 4, 4, 3]
    assert [w.decision for w in report.windows] == [
        "grow", "grow", "hold", "shrink", "shrink",
    ]
    assert report.final_devices == 2
    assert [w.start_s for w in report.windows] == [0.0, 10.0, 20.0, 30.0, 40.0]
    payload = report.to_dict()
    assert payload["device_trajectory"] == [2, 3, 4, 4, 3]
    assert len(payload["windows"]) == 5


def test_autoscaler_config_validation():
    with pytest.raises(ValueError):
        _cfg(window_s=0.0)
    with pytest.raises(ValueError):
        _cfg(low_utilization=0.9, high_utilization=0.5)
    with pytest.raises(ValueError):
        _cfg(step=0)
    with pytest.raises(ValueError):
        _cfg(capacity_per_device_rps=-1.0)
    with pytest.raises(ValueError):
        FleetAutoscaler(lambda n, w: None, _cfg()).run(0)


# --------------------------------------------------------------------- #
# burn-rate trigger
# --------------------------------------------------------------------- #


def _burn_cfg(**kwargs):
    defaults = dict(trigger="burn_rate", target_miss_rate=0.05)
    defaults.update(kwargs)
    return _cfg(**defaults)


def test_burn_rate_decisions_follow_the_budget_not_the_band():
    # Each decision on a fresh scaler so the trailing history is empty.
    # missed=10 of 100 completed -> miss 0.1 -> burn 2.0 over target 0.05.
    grow = FleetAutoscaler(lambda n, w: None, _burn_cfg())
    assert grow.decide(_util_report(0.5, 4, missed=10), 4) == ("grow", 5)
    # Zero burn + idle fleet shrinks.
    shrink = FleetAutoscaler(lambda n, w: None, _burn_cfg())
    assert shrink.decide(_util_report(0.1, 4, missed=0), 4) == ("shrink", 3)
    # Zero burn but the fleet is busy: shrink stays gated on utilisation.
    hold = FleetAutoscaler(lambda n, w: None, _burn_cfg())
    assert hold.decide(_util_report(0.5, 4, missed=0), 4) == ("hold", 4)
    # Half-threshold hysteresis: burn 0.6 is neither grow nor shrink.
    mid = FleetAutoscaler(lambda n, w: None, _burn_cfg())
    assert mid.decide(_util_report(0.1, 4, missed=3), 4) == ("hold", 4)
    # Just under the half threshold (burn 0.4) releases the shrink.
    low = FleetAutoscaler(lambda n, w: None, _burn_cfg())
    assert low.decide(_util_report(0.1, 4, missed=2), 4) == ("shrink", 3)


def test_burn_rate_slow_window_guards_the_shrink():
    """One bad window keeps the fleet big for ``burn_windows`` windows."""
    scaler = FleetAutoscaler(lambda n, w: None, _burn_cfg(burn_windows=4))
    assert scaler.decide(_util_report(0.1, 4, missed=10), 4) == ("grow", 5)
    # Fast burn drops to zero immediately, but the trailing mean remembers
    # the spike: [2,0] -> 1.0, [2,0,0] -> 0.67, [2,0,0,0] -> 0.5, all >= 0.5.
    for _ in range(3):
        assert scaler.decide(_util_report(0.1, 5, missed=0), 5) == ("hold", 5)
    # The spike finally ages out of the trailing window.
    assert scaler.decide(_util_report(0.1, 5, missed=0), 5) == ("shrink", 4)


def test_burn_rate_run_trajectory_is_deterministic():
    misses = [10, 10, 0, 0, 0]
    utils = [0.9, 0.9, 0.2, 0.2, 0.2]

    def run_window(n, w):
        return _util_report(utils[w], n, missed=misses[w])

    scaler = FleetAutoscaler(run_window, _burn_cfg(burn_windows=2))
    report = scaler.run(5, initial_devices=2)
    assert report.device_trajectory == [2, 3, 4, 4, 3]
    assert [w.decision for w in report.windows] == [
        "grow", "grow", "hold", "shrink", "shrink",
    ]
    assert [(w.fast_burn, w.slow_burn) for w in report.windows] == [
        (2.0, 2.0), (2.0, 2.0), (0.0, 1.0), (0.0, 0.0), (0.0, 0.0),
    ]
    # run() resets the burn history, so a second run is bit-identical.
    assert scaler.run(5, initial_devices=2).to_dict() == report.to_dict()


def test_burn_rate_report_serialises_the_trigger():
    report = FleetAutoscaler(
        lambda n, w: _util_report(0.5, n, missed=10), _burn_cfg(burn_threshold=1.5)
    ).run(1, initial_devices=2)
    payload = report.to_dict()
    assert payload["trigger"] == "burn_rate"
    assert payload["burn_threshold"] == 1.5
    assert payload["burn_windows"] == 4
    window = payload["windows"][0]
    assert window["fast_burn"] == 2.0 and window["slow_burn"] == 2.0


def test_burn_rate_config_validation():
    with pytest.raises(ValueError, match="trigger"):
        _cfg(trigger="latency")
    with pytest.raises(ValueError, match="target_miss_rate"):
        _cfg(trigger="burn_rate")
    with pytest.raises(ValueError, match="exclusive"):
        _burn_cfg(capacity_per_device_rps=5.0)
    with pytest.raises(ValueError, match="burn_threshold"):
        _burn_cfg(burn_threshold=0.0)
    with pytest.raises(ValueError, match="burn_windows"):
        _burn_cfg(burn_windows=0)
