"""Golden-file pin of the ``--trace-json`` span taxonomy and Chrome shape.

``docs/observability.md`` documents the trace taxonomy — which
``(track family, kind, name, arg keys)`` combinations a serving run can
emit — and downstream tooling keys on those names when slicing a Perfetto
session.  This test runs one fully-featured scenario (contention,
predictive admission with requeue, fleet churn with retries) through a
:class:`Tracer` and pins the observed taxonomy plus the structural shape
of the Chrome export against a committed golden file, so any change to
the emitted events is a deliberate two-file diff (code + golden + docs),
never an accident.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/serving/test_trace_schema.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.faults import RetryPolicy
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
)

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "serving_trace_schema.json"


def build_trace() -> Tracer:
    """One contended, churned, predictively-admitted run's trace."""
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70)])
    network = NetworkModel.constant_from_devices(devices)
    tenants = [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(150.0, seed=3),
            slo=SLO(deadline_ms=25.0),
            weight=2.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(100.0, seed=4),
            slo=SLO(deadline_ms=40.0),
            queue_capacity=8,
        ),
    ]
    policy = ClusterPolicy(
        discipline="wfq",
        admission="predictive",
        on_predicted_miss="requeue",
        max_inflight=4,
    )
    tracer = Tracer()
    ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants,
        duration_s=2.0,
        policy=policy,
        faults="churn:events=crash:0@200;join:0@900",
        retry=RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7),
        tracer=tracer,
    )
    return tracer


def _track_family(track: str) -> str:
    """Collapse instance names so the taxonomy pins shapes, not ids."""
    if track.startswith("tenant:"):
        return "tenant"
    if track.startswith("lane:"):
        return f"lane(role={track.rsplit(':', 1)[1]})"
    return track


def trace_schema(tracer: Tracer) -> dict:
    taxonomy = sorted(
        {
            (
                _track_family(event.track),
                event.kind,
                event.name,
                ",".join(key for key, _ in event.args),
                "span" if event.dur_ms > 0.0 else "instant",
            )
            for event in tracer.events
        }
    )
    chrome = tracer.to_chrome()
    return {
        "taxonomy": [list(entry) for entry in taxonomy],
        "chrome_top_level": sorted(chrome),
        "chrome_phases": sorted({r["ph"] for r in chrome["traceEvents"]}),
        "chrome_record_keys": sorted(
            {key for record in chrome["traceEvents"] for key in record}
        ),
    }


def test_trace_schema_matches_golden():
    assert GOLDEN.exists(), (
        f"golden trace schema missing at {GOLDEN}; generate it with "
        f"`PYTHONPATH=src python {__file__} --regenerate`"
    )
    expected = json.loads(GOLDEN.read_text())
    actual = trace_schema(build_trace())
    assert actual == expected, (
        "trace taxonomy drifted from tests/data/serving_trace_schema.json — "
        "if intentional, regenerate the golden file AND update the span "
        "taxonomy table in docs/observability.md"
    )


def test_scenario_exercises_every_event_source():
    """The pinned run must actually cover the taxonomy's families."""
    kinds = {(event.kind, event.name) for event in build_trace().events}
    assert ("request", "serve") in kinds
    assert ("request", "dispatch") in kinds
    assert ("fault", "crash") in kinds
    assert any(kind == "lane" for kind, _ in kinds)


def test_chrome_export_is_valid_json():
    chrome = build_trace().to_chrome()
    assert json.loads(json.dumps(chrome))["displayTimeUnit"] == "ms"


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(trace_schema(build_trace()), indent=2) + "\n")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
