"""Bit-identity and semantics of shared-fleet contended serving.

The PR's acceptance bar: across >= 3 tenants sharing at least one device,
under every cross-tenant discipline (FIFO, deadline-slack, WFQ) and on a
sharded pool, the contended batched loop — memoized on (network state, lane
occupancy) signatures — must equal the scalar per-request reference loop
exactly, fleet breakdown included; and with contention disabled the
simulator must reproduce the independent-tenants reports unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.experiments.scenarios import generate_scenario
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.shard import ShardedPlanEvaluator
from repro.serving import (
    SLO,
    ClusterPolicy,
    FleetDispatcher,
    MMPPArrivals,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    assert_reports_equal,
    run_with_parity,
)
from repro.serving.tenants import Dispatch


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def _split_plan(model, devices, method="split"):
    boundaries = [0, 6, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    return DistributionPlan(
        model,
        devices,
        boundaries,
        [SplitDecision.equal(len(devices), v.output_height) for v in volumes],
        method=method,
    )


def _three_tenants(model, devices):
    """Three tenants whose plans all land work on device 0 (shared)."""
    return [
        TenantSpec(
            "solo0",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(4.0, seed=1),
            slo=SLO(deadline_ms=60.0),
            weight=2.0,
        ),
        TenantSpec(
            "split",
            _split_plan(model, devices),
            traffic=MMPPArrivals(0.5, 10.0, dwell_low_s=4.0, dwell_high_s=2.0, seed=2),
            slo=SLO(deadline_ms=120.0),
            weight=1.0,
        ),
        TenantSpec(
            "burst0",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(3.0, seed=3),
            queue_capacity=6,
        ),
    ]


class TestContendedParity:
    @pytest.mark.parametrize("discipline", ["fifo", "deadline", "wfq"])
    def test_disciplines_constant_network(self, model, discipline):
        devices = make_cluster([("xavier", 200), ("nano", 200), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            _three_tenants(model, devices),
            duration_s=12.0,
            policy=ClusterPolicy(discipline=discipline),
        )
        assert report.contention
        assert report.discipline == discipline
        assert report.total_completed > 0
        assert report.fleet is not None
        assert report.fleet.requests == report.total_completed
        # Two tenants pile onto device 0: the run must contain real contention
        # (otherwise the parity assertion is vacuous).
        assert report.fleet.contended_requests > 0
        # The memo grouped repeated signatures into fewer evaluations.
        assert report.epochs < report.total_completed
        assert report.cache_hits > 0

    @pytest.mark.parametrize("discipline", ["fifo", "deadline", "wfq"])
    def test_disciplines_dynamic_network(self, model, discipline):
        devices = make_cluster([("nano", 70), ("nano", 70)])
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=5)
        tenants = [
            TenantSpec(
                "a",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(3.0, seed=7),
                slo=SLO(deadline_ms=40.0),
            ),
            TenantSpec(
                "b",
                _split_plan(model, devices),
                traffic=PoissonArrivals(2.0, seed=8),
                slo=SLO(deadline_ms=60.0),
                weight=3.0,
            ),
            TenantSpec(
                "c",
                DistributionPlan.single_device(model, devices, 1),
                traffic=None,
                max_requests=15,
                gap_ms=250.0,
            ),
        ]
        run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=10.0,
            policy=ClusterPolicy(discipline=discipline),
        )

    def test_max_inflight_parity_and_effect(self, model):
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenants = [
            TenantSpec(
                f"t{i}",
                DistributionPlan.single_device(model, devices, i % 2),
                traffic=PoissonArrivals(5.0, seed=20 + i),
                slo=SLO(deadline_ms=100.0),
            )
            for i in range(3)
        ]
        capped = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=8.0,
            policy=ClusterPolicy(discipline="fifo", max_inflight=1),
        )
        free = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=8.0,
            policy=ClusterPolicy(discipline="fifo"),
        )
        assert capped.max_inflight == 1
        assert capped.fleet.gate_wait_ms > 0
        assert free.fleet.gate_wait_ms == 0
        assert capped.response_percentile_ms(95) >= free.response_percentile_ms(95)

    def test_sharded_pool_run(self, model):
        """The contended loops accept a sharded evaluator (its local engine)."""
        scenario = generate_scenario(4, seed=11, bandwidth_mbps=200.0, heterogeneity="nano")
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            devices, network = sharded.devices, sharded.network
            tenants = [
                TenantSpec(
                    "s0",
                    DistributionPlan.single_device(model, devices, 0),
                    traffic=PoissonArrivals(5.0, seed=1),
                    slo=SLO(deadline_ms=50.0),
                ),
                TenantSpec(
                    "s1",
                    _split_plan(model, devices),
                    traffic=PoissonArrivals(5.0, seed=2),
                ),
                TenantSpec(
                    "s2",
                    DistributionPlan.single_device(model, devices, 0),
                    traffic=PoissonArrivals(4.0, seed=3),
                ),
            ]
            report = run_with_parity(
                sharded,
                PlanEvaluator(devices, network),
                tenants,
                duration_s=6.0,
                policy=ClusterPolicy(discipline="wfq"),
            )
            assert report.fleet.contended_requests > 0


class TestContentionDisabled:
    def test_no_policy_reproduces_independent_reports(self, model):
        """A lone closed-loop tenant drains the fleet between its requests,
        so contended serving must reproduce the independent-tenants numbers
        exactly — and a policy-free run must stay byte-for-byte the PR 4
        behaviour (no fleet, no discipline, same tenant series)."""
        devices = make_cluster([("xavier", 200), ("nano", 200)])
        network = NetworkModel.constant_from_devices(devices)
        tenant = TenantSpec(
            "closed",
            _split_plan(model, devices),
            traffic=None,
            max_requests=12,
            gap_ms=10.0,
        )
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        independent = simulator.run([tenant], duration_s=None)
        contended = simulator.run(
            [tenant], duration_s=None, policy=ClusterPolicy(discipline="fifo")
        )
        assert independent.fleet is None and not independent.contention
        assert contended.fleet is not None
        a, b = independent.tenants[0], contended.tenants[0]
        assert np.array_equal(a.latency_ms, b.latency_ms)
        assert np.array_equal(a.completion_s, b.completion_s)
        assert contended.fleet.contended_requests == 0

    def test_policy_free_parity_unchanged(self, model):
        """Guard: the PR 4 parity contract still holds without a policy."""
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenants = [
            TenantSpec(
                "p0",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(4.0, seed=1),
            ),
            TenantSpec("p1", _split_plan(model, devices), traffic=PoissonArrivals(3.0, seed=2)),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=10.0,
        )
        assert not report.contention and report.fleet is None

    def test_parity_detects_fleet_divergence(self, model):
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenant = TenantSpec(
            "t",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(4.0, seed=1),
        )
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        fifo = simulator.run([tenant], duration_s=5.0, policy=ClusterPolicy())
        capped = simulator.run(
            [tenant], duration_s=5.0, policy=ClusterPolicy(max_inflight=1)
        )
        with pytest.raises(AssertionError):
            assert_reports_equal(fifo, capped)


class TestDisciplineSemantics:
    def test_wfq_weight_shifts_service(self):
        """Under a saturating backlog, the heavier tenant is served first."""
        heavy_model = model_zoo.small_vgg(128)
        devices = make_cluster([("pi3", 40)])
        network = NetworkModel.constant_from_devices(devices)
        plan = DistributionPlan.single_device(heavy_model, devices, 0)

        def run(weight_a):
            tenants = [
                TenantSpec(
                    "heavy",
                    plan,
                    traffic=PoissonArrivals(30.0, seed=1),
                    slo=SLO(deadline_ms=200.0),
                    weight=weight_a,
                ),
                TenantSpec(
                    "light",
                    plan,
                    traffic=PoissonArrivals(30.0, seed=2),
                    slo=SLO(deadline_ms=200.0),
                ),
            ]
            simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
            return simulator.run(
                tenants, duration_s=3.0, policy=ClusterPolicy(discipline="wfq")
            )

        boosted = run(8.0)
        equal = run(1.0)
        assert boosted.fleet.contended_requests > 0, (
            "workload never contended the fleet; the weight comparison is vacuous"
        )
        # Raising "heavy"'s weight must improve its response relative to the
        # equal-weight run (it wins more of the contended lane time), and the
        # unweighted tenant pays for it.
        assert (
            boosted.tenant("heavy").mean_response_ms
            < equal.tenant("heavy").mean_response_ms
        )
        assert (
            boosted.tenant("light").mean_response_ms
            > equal.tenant("light").mean_response_ms
        )

    def test_deadline_discipline_prefers_least_slack(self, model):
        devices = make_cluster([("nano", 100)])
        specs = [
            TenantSpec(
                "tight",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(1.0, seed=1),
                slo=SLO(deadline_ms=10.0),
            ),
            TenantSpec(
                "loose",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(1.0, seed=2),
                slo=SLO(deadline_ms=1000.0),
            ),
            TenantSpec(
                "none",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(1.0, seed=3),
            ),
        ]
        dispatcher = FleetDispatcher("deadline", specs)
        pending = {
            0: Dispatch(arrival_s=1.0, start_s=1.0, plan=specs[0].plan),
            1: Dispatch(arrival_s=1.0, start_s=1.0, plan=specs[1].plan),
            2: Dispatch(arrival_s=0.5, start_s=0.5, plan=specs[2].plan),
        }
        # Least slack wins even though the SLO-less tenant released earlier.
        assert dispatcher.select(pending) == 0
        del pending[0]
        assert dispatcher.select(pending) == 1
        del pending[1]
        assert dispatcher.select(pending) == 2

    def test_fifo_breaks_ties_by_tenant_order(self, model):
        devices = make_cluster([("nano", 100)])
        plan = DistributionPlan.single_device(model, devices, 0)
        specs = [
            TenantSpec(f"t{i}", plan, traffic=PoissonArrivals(1.0, seed=i)) for i in range(2)
        ]
        dispatcher = FleetDispatcher("fifo", specs)
        pending = {
            1: Dispatch(arrival_s=2.0, start_s=2.0, plan=plan),
            0: Dispatch(arrival_s=2.0, start_s=2.0, plan=plan),
        }
        assert dispatcher.select(pending) == 0

    def test_priority_cannot_overtake_across_an_idle_fleet(self, model):
        """A dispatch released after the fleet drains must not be scheduled
        ahead of earlier pending work (the inversion would charge an
        idle-fleet request for lane occupancy created in its future)."""
        from repro.serving.traffic import TraceArrivals

        devices = make_cluster([("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        plan = DistributionPlan.single_device(model, devices, 0)
        tenants = [
            TenantSpec(
                "early",
                plan,
                traffic=TraceArrivals(offsets_s=(0.1, 0.2)),
                slo=SLO(deadline_ms=100.0),
            ),
            TenantSpec(
                "late",
                plan,
                traffic=TraceArrivals(offsets_s=(10.0,)),
                slo=SLO(deadline_ms=100.0),
                weight=100.0,
            ),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=15.0,
            policy=ClusterPolicy(discipline="wfq"),
        )
        early = report.tenant("early")
        # The fleet is idle between 0.2s and 10s: both early requests are
        # served on the spot, never behind the future t=10 dispatch.
        assert early.response_ms.max() < 1000.0
        assert report.deadline_miss_rate == 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="discipline"):
            ClusterPolicy(discipline="lifo")
        with pytest.raises(ValueError, match="max_inflight"):
            ClusterPolicy(max_inflight=0)
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(
                "w",
                plan=None,  # weight check fires before plan use
                traffic=PoissonArrivals(1.0),
                weight=0.0,
            )


class TestPerTenantPlanCache:
    def test_batched_loop_skips_repeat_evaluations(self, model):
        """Steady-state dispatches on a constant network hit the per-tenant
        cache instead of re-entering the evaluator."""
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)

        calls = []

        class CountingEvaluator(BatchPlanEvaluator):
            def evaluate_plans(self, plans, t_seconds=0.0):
                calls.append(len(plans))
                return super().evaluate_plans(plans, t_seconds)

        tenants = [
            TenantSpec(
                "a",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(4.0, seed=1),
            ),
            TenantSpec("b", _split_plan(model, devices), traffic=PoissonArrivals(4.0, seed=2)),
        ]
        simulator = ServingSimulator(CountingEvaluator(devices, network))
        report = simulator.run(tenants, duration_s=10.0)
        # Each tenant's (plan, network-state) pair is evaluated once; every
        # later dispatch is a per-tenant cache hit that bypasses the batch
        # engine entirely.
        assert sum(calls) == 2
        assert report.cache_hits == report.total_completed - 2
        assert report.total_completed > 10

    def test_cache_respects_replans(self, model):
        """A strategy change re-evaluates; returning to a seen strategy hits."""
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        plan_a = DistributionPlan.single_device(model, devices, 0, method="a")
        plan_b = DistributionPlan.single_device(model, devices, 1, method="b")

        def hook_factory():
            def hook(t, index, current, history):
                # Flip strategy every 4 requests.
                return plan_b if (index // 4) % 2 else plan_a

            return hook

        tenants = [
            TenantSpec(
                "flip",
                plan_a,
                traffic=PoissonArrivals(5.0, seed=4),
                hook_factory=hook_factory,
            )
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=8.0,
        )
        flip = report.tenant("flip")
        assert flip.replan_times_s, "hook never changed the strategy; test is vacuous"
        # Both strategies were evaluated once; the rest were cache hits.
        assert report.cache_hits == report.total_completed - 2
