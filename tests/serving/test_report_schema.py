"""Golden-file pin of the ``--report-json`` serving-report schema.

``docs/benchmarks.md`` documents the JSON written by
``repro serve --report-json``; downstream tooling (trend dashboards, the
bench gates) parses it by key path.  This test flattens a fully-featured
contended report — predictive admission, window series, fleet breakdown —
into ``key.path: type`` pairs and compares them against the committed
golden file, so any schema change is a deliberate two-file diff (code +
golden + docs), never an accident.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/serving/test_report_schema.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
)

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "serving_report_schema.json"


def _flatten_types(value, prefix=""):
    """``{key.path: type-name}`` with list elements collapsed to ``[]``.

    Lists contribute their first element's schema (every tenant row and
    window shares a shape); an empty list pins only its own presence.
    """
    out = {}
    if isinstance(value, dict):
        for key, sub in sorted(value.items()):
            out.update(_flatten_types(sub, f"{prefix}.{key}" if prefix else key))
    elif isinstance(value, list):
        out[prefix] = "list"
        if value:
            out.update(_flatten_types(value[0], f"{prefix}[]"))
    else:
        type_name = type(value).__name__
        # Ints are valid floats in JSON; pin the numeric kind loosely so a
        # 0-valued float field serialised as 0 does not flap the schema.
        out[prefix] = {"int": "number", "float": "number", "bool": "bool",
                       "str": "str", "NoneType": "null"}.get(type_name, type_name)
    return out


def build_report_payload():
    """One contended run exercising every optional report field."""
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    tenants = [
        TenantSpec(
            "tight",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(200.0, seed=11),
            slo=SLO(deadline_ms=20.0),
            weight=2.0,
        ),
        TenantSpec(
            "loose",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(100.0, seed=12),
            slo=SLO(deadline_ms=40.0),
            queue_capacity=8,
        ),
    ]
    policy = ClusterPolicy(
        discipline="wfq",
        admission="predictive",
        on_predicted_miss="requeue",
        window_ms=500.0,
        max_inflight=8,
    )
    report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants, duration_s=2.0, policy=policy
    )
    return report.to_dict()


def test_report_json_schema_matches_golden():
    assert GOLDEN.exists(), (
        f"golden schema missing at {GOLDEN}; generate it with "
        f"`PYTHONPATH=src python {__file__} --regenerate`"
    )
    expected = json.loads(GOLDEN.read_text())
    actual = _flatten_types(build_report_payload())
    assert actual == expected, (
        "serving report JSON schema drifted from tests/data/"
        "serving_report_schema.json — if intentional, regenerate the golden "
        "file AND update the schema table in docs/benchmarks.md"
    )


def test_payload_is_json_serialisable():
    text = json.dumps(build_report_payload())
    assert json.loads(text)["admission"] == "predictive"


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(
            json.dumps(_flatten_types(build_report_payload()), indent=2) + "\n"
        )
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
