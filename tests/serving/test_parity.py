"""Bit-identity of the epoch-batched event loop vs the naive reference loop.

The acceptance bar for the serving subsystem: across multiple tenants, a
dynamic-network trace, and a replanning controller adapting *under load*,
the batched loop's every per-request number — arrivals, starts, completions,
latencies, responses, deadline flags, queue-depth events, rejections and
replan logs — must equal the reference loop's exactly (no tolerance).
"""

from __future__ import annotations

import pytest

from repro.baselines import CoEdgePlanner
from repro.core.online import PeriodicReplanController
from repro.devices.specs import make_cluster
from repro.experiments.scenarios import generate_scenario
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.shard import ShardedPlanEvaluator
from repro.serving import (
    SLO,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    assert_reports_equal,
    run_with_parity,
)


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def _split_plan(model, devices, method="split"):
    from repro.nn.splitting import SplitDecision

    boundaries = [0, 6, model.num_spatial_layers]
    volumes = model.partition(boundaries)
    return DistributionPlan(
        model,
        devices,
        boundaries,
        [SplitDecision.equal(len(devices), v.output_height) for v in volumes],
        method=method,
    )


class TestParity:
    def test_two_tenants_constant_network(self, model):
        devices = make_cluster([("xavier", 200), ("nano", 200)])
        network = NetworkModel.constant_from_devices(devices)
        tenants = [
            TenantSpec(
                "p0",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(4.0, seed=1),
                slo=SLO(deadline_ms=50.0),
            ),
            TenantSpec(
                "p1",
                _split_plan(model, devices),
                traffic=MMPPArrivals(0.5, 12.0, seed=2),
                slo=SLO(deadline_ms=80.0),
                queue_capacity=4,
            ),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=20.0,
        )
        assert report.mode == "batched"
        assert report.total_completed > 0
        # Constant network: every epoch's dispatches share one signature, so
        # the batched loop ran with genuine cross-tenant batches.
        assert report.epochs < report.total_completed

    def test_dynamic_network_trace(self, model):
        devices = make_cluster([("nano", 70), ("nano", 70)])
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=3)
        tenants = [
            TenantSpec(
                "a",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(3.0, seed=5),
                slo=SLO(deadline_ms=20.0),
            ),
            TenantSpec(
                "b",
                _split_plan(model, devices),
                traffic=DiurnalArrivals(base_rps=1.0, peak_rps=8.0, period_s=10.0, seed=6),
                slo=SLO(deadline_ms=30.0),
            ),
            TenantSpec("c", DistributionPlan.single_device(model, devices, 1),
                       traffic=None, max_requests=25, gap_ms=400.0),
        ]
        run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=15.0,
        )

    def test_replanning_controller_under_load(self, model):
        """A Section V-F controller replans a tenant mid-stream, bit-identically."""
        devices = make_cluster([("nano", 70), ("nano", 70)])
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=2)
        planner = CoEdgePlanner()

        def controller_factory():
            controller = PeriodicReplanController(
                planner_fn=lambda t: planner.plan(model, devices, network),
                network=network,
                replan_threshold=0.05,
                replan_delay_s=1.0,
            )
            return controller.adaptation_hook

        tenants = [
            TenantSpec(
                "adaptive",
                DistributionPlan.single_device(model, devices, 0, method="initial"),
                traffic=PoissonArrivals(2.0, seed=9),
                slo=SLO(deadline_ms=25.0),
                hook_factory=controller_factory,
            ),
            TenantSpec(
                "static",
                _split_plan(model, devices),
                traffic=PoissonArrivals(2.0, seed=10),
            ),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=30.0,
        )
        adaptive = report.tenant("adaptive")
        assert adaptive.replan_times_s, "the controller never replanned; test is vacuous"
        assert adaptive.final_method == "coedge"

    def test_sharded_evaluator_parity(self, model):
        """The epoch loop may hand its batches to a sharded worker pool."""
        scenario = generate_scenario(4, seed=11, bandwidth_mbps=200.0, heterogeneity="nano")
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            devices, network = sharded.devices, sharded.network
            tenants = [
                TenantSpec(
                    "s0",
                    DistributionPlan.single_device(model, devices, 0),
                    traffic=PoissonArrivals(5.0, seed=1),
                ),
                TenantSpec(
                    "s1",
                    _split_plan(model, devices),
                    traffic=PoissonArrivals(5.0, seed=2),
                ),
            ]
            run_with_parity(
                sharded, PlanEvaluator(devices, network), tenants, duration_s=8.0
            )

    def test_parity_rejects_bare_stateful_hooks(self, model):
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenants = [
            TenantSpec(
                "t",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(1.0),
                adaptation_hook=lambda t, i, p, h: None,
            )
        ]
        with pytest.raises(ValueError, match="hook_factory"):
            run_with_parity(
                BatchPlanEvaluator(devices, network),
                PlanEvaluator(devices, network),
                tenants,
                duration_s=1.0,
            )

    def test_assert_reports_equal_detects_divergence(self, model):
        devices = make_cluster([("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        evaluator = BatchPlanEvaluator(devices, network)
        tenant = TenantSpec(
            "t",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(2.0, seed=1),
        )
        simulator = ServingSimulator(evaluator)
        a = simulator.run([tenant], duration_s=5.0)
        b = simulator.run([tenant], duration_s=6.0)  # different workload
        with pytest.raises(AssertionError):
            assert_reports_equal(a, b)
