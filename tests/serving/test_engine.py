"""Array serving engine: bit-identity against the scalar reference loop.

The acceptance bar of the ``engine="array"`` time-wheel: across open- and
closed-loop tenants, dynamic traces, slot pools, request caps, admission
bounds, adaptation hooks, all three contention disciplines and a sharded
pool, every per-request number must equal the reference loop's exactly —
``run_with_parity(..., engine="array")`` is the contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import PeriodicReplanController
from repro.devices.specs import make_cluster
from repro.experiments.scenarios import generate_scenario
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.shard import ShardedPlanEvaluator
from repro.serving import (
    SLO,
    ClusterPolicy,
    MMPPArrivals,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    run_with_parity,
    vectorizable,
)
from repro.serving.engine import ArrayServingEngine


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def _two_devices():
    devices = make_cluster([("xavier", 200), ("nano", 200)])
    return devices, NetworkModel.constant_from_devices(devices)


def _parity(devices, network, tenants, **kwargs):
    return run_with_parity(
        BatchPlanEvaluator(devices, network),
        PlanEvaluator(devices, network),
        tenants,
        engine="array",
        **kwargs,
    )


class TestVectorPathParity:
    def test_open_and_closed_loop_constant_network(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "open",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(6.0, seed=1),
                slo=SLO(deadline_ms=40.0),
            ),
            TenantSpec(
                "closed",
                DistributionPlan.single_device(model, devices, 1),
                max_requests=40,
                gap_ms=3.0,
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=15.0)
        assert report.engine == "array"
        assert report.total_completed > 0
        # Static network: the whole timeline commits from one evaluation
        # per distinct plan, so nearly every request rode a speculation.
        assert report.speculated >= report.total_completed - len(tenants)

    @pytest.mark.parametrize("kind", ["wifi", "dynamic"])
    def test_dynamic_traces(self, model, kind):
        """Continuously-varying links: per-request verification stays exact."""
        devices = make_cluster([("xavier", 100), ("nano", 100)])
        network = NetworkModel.from_devices(devices, kind=kind, seed=3)
        tenants = [
            TenantSpec(
                "a",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(8.0, seed=1),
                slo=SLO(deadline_ms=50.0),
            ),
            TenantSpec(
                "b",
                DistributionPlan.single_device(model, devices, 1),
                traffic=MMPPArrivals(0.5, 12.0, seed=2),
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=25.0)
        # Interpolated traces change the signature at every instant, so
        # speculation cannot cover the whole run in one epoch as it does
        # on static networks.
        assert report.epochs > 1

    def test_step_trace_speculation_and_rollback(self, model):
        """A piecewise-constant link: windows commit, the jump rolls back.

        Within each flat segment the signature holds, so whole windows
        verify and commit; the step forces the window straddling it to
        discard its mis-speculated tail — all of it bit-exact against the
        reference loop.  The trace deliberately does not override
        ``throughput_mbps_array``, exercising the base-class scalar-loop
        fallback of the verifier too.
        """
        from repro.network.bandwidth import BandwidthTrace
        from repro.network.link import Link, TransmissionModel

        class StepTrace(BandwidthTrace):
            def __init__(self, before, after, jump_s):
                self.before, self.after, self.jump_s = before, after, jump_s
                self.nominal_mbps = float(before)

            def throughput_mbps(self, t_seconds):
                return float(self.before if t_seconds < self.jump_s else self.after)

        devices = make_cluster([("xavier", 200), ("nano", 200)])
        tm = TransmissionModel()
        network = NetworkModel(
            provider_links=[
                Link(trace=StepTrace(200.0, 60.0, 5.0), model=tm),
                Link(trace=StepTrace(200.0, 90.0, 5.0), model=tm),
            ],
        )
        assert not network.is_static
        tenants = [
            TenantSpec(
                "steady",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(25.0, seed=8),
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=10.0)
        assert report.speculated > 0, "no window committed; test is vacuous"
        assert report.epochs > 1, "the step never interrupted a window"

    def test_slot_pools_open_and_closed(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "s3",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(20.0, seed=5),
                slots=3,
            ),
            TenantSpec(
                "c2",
                DistributionPlan.single_device(model, devices, 1),
                max_requests=30,
                slots=2,
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=8.0)
        s3 = report.tenant("s3")
        # With 3 slots a request may start before the previous completion.
        overlaps = np.sum(s3.start_s[1:] < s3.completion_s[:-1])
        assert overlaps > 0, "slot pool never overlapped; test is vacuous"

    def test_request_cap_drain(self, model):
        """At max_requests the queued + remaining arrivals are rejected."""
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "capped",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(50.0, seed=4),
                max_requests=10,
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=10.0)
        capped = report.tenant("capped")
        assert capped.num_completed == 10
        assert capped.num_rejected == capped.num_arrivals - 10
        assert capped.num_rejected > 0

    def test_closed_loop_max_duration_truncation(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "t",
                DistributionPlan.single_device(model, devices, 0),
                max_requests=100000,
                max_duration_s=2.0,
            ),
        ]
        report = _parity(devices, network, tenants)
        t = report.tenant("t")
        assert 0 < t.num_completed < 100000


class TestFallbackPathParity:
    def test_queue_capacity_falls_back(self, model):
        devices, network = _two_devices()
        spec = TenantSpec(
            "bounded",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(120.0, seed=6),
            queue_capacity=2,
        )
        assert not vectorizable(spec)
        report = _parity(devices, network, [spec], duration_s=10.0)
        assert report.tenant("bounded").num_rejected > 0

    def test_adaptation_hook_falls_back(self, model):
        from repro.baselines import CoEdgePlanner

        devices = make_cluster([("nano", 70), ("nano", 70)])
        network = NetworkModel.from_devices(devices, kind="dynamic", seed=2)
        planner = CoEdgePlanner()

        def controller_factory():
            controller = PeriodicReplanController(
                planner_fn=lambda t: planner.plan(model, devices, network),
                network=network,
                replan_threshold=0.05,
                replan_delay_s=1.0,
            )
            return controller.adaptation_hook

        spec = TenantSpec(
            "adaptive",
            DistributionPlan.single_device(model, devices, 0, method="initial"),
            traffic=PoissonArrivals(2.0, seed=9),
            hook_factory=controller_factory,
        )
        assert not vectorizable(spec)
        static = TenantSpec(
            "static",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(2.0, seed=10),
        )
        report = _parity(devices, network, [spec, static], duration_s=30.0)
        adaptive = report.tenant("adaptive")
        assert adaptive.replan_times_s, "controller never replanned; test is vacuous"
        assert adaptive.final_method == "coedge"

    def test_mixed_fleet_fallback_and_vector(self, model):
        """Fallback chains share the engine's epochs with column tenants."""
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "vec",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(10.0, seed=1),
            ),
            TenantSpec(
                "fall",
                DistributionPlan.single_device(model, devices, 1),
                traffic=PoissonArrivals(10.0, seed=2),
                queue_capacity=1,
            ),
        ]
        report = _parity(devices, network, tenants, duration_s=10.0)
        assert report.tenant("vec").num_completed > 0
        assert report.tenant("fall").num_completed > 0


class TestContendedAndSharded:
    @pytest.mark.parametrize("discipline", ["fifo", "deadline", "wfq"])
    def test_contended_parity(self, model, discipline):
        """Contended array runs keep the canonical dispatcher interleaving."""
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "a",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(4.0, seed=1),
                slo=SLO(deadline_ms=200.0),
            ),
            TenantSpec(
                "b",
                DistributionPlan.single_device(model, devices, 1),
                traffic=PoissonArrivals(3.0, seed=2),
                weight=2.0,
            ),
        ]
        report = _parity(
            devices,
            network,
            tenants,
            duration_s=8.0,
            policy=ClusterPolicy(discipline=discipline, max_inflight=2),
        )
        assert report.contention
        assert report.engine == "array"
        assert report.fleet is not None

    def test_sharded_pool_parity(self, model):
        scenario = generate_scenario(4, seed=11, bandwidth_mbps=200.0, heterogeneity="nano")
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            devices, network = sharded.devices, sharded.network
            tenants = [
                TenantSpec(
                    "s0",
                    DistributionPlan.single_device(model, devices, 0),
                    traffic=PoissonArrivals(5.0, seed=1),
                ),
                TenantSpec(
                    "s1",
                    DistributionPlan.single_device(model, devices, 1),
                    traffic=PoissonArrivals(5.0, seed=2),
                    slots=2,
                ),
            ]
            report = run_with_parity(
                sharded,
                PlanEvaluator(devices, network),
                tenants,
                duration_s=8.0,
                engine="array",
            )
            assert report.engine == "array"


class TestValidation:
    def test_array_engine_rejects_reference_mode(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "t",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(2.0, seed=1),
            )
        ]
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        with pytest.raises(ValueError, match="reference"):
            simulator.run(tenants, duration_s=5.0, mode="reference", engine="array")

    def test_unknown_engine_rejected(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "t",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(2.0, seed=1),
            )
        ]
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        with pytest.raises(ValueError, match="engine"):
            simulator.run(tenants, duration_s=5.0, engine="simd")

    def test_array_engine_needs_batch_api(self, model):
        devices, network = _two_devices()
        tenants = [
            TenantSpec(
                "t",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(2.0, seed=1),
            )
        ]
        simulator = ServingSimulator(PlanEvaluator(devices, network))
        with pytest.raises(TypeError, match="evaluate_plans"):
            simulator.run(tenants, duration_s=5.0, engine="array")

    def test_speculation_floor_enforced(self, model):
        devices, network = _two_devices()
        with pytest.raises(ValueError, match="speculation"):
            ArrayServingEngine(BatchPlanEvaluator(devices, network), speculation=1)

    def test_slots_validation(self, model):
        devices, _ = _two_devices()
        with pytest.raises(ValueError, match="slots"):
            TenantSpec(
                "bad",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(1.0, seed=0),
                slots=0,
            )
