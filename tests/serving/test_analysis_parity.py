"""Analysis-level parity: attribution and alert timelines are byte-identical.

One level above trace parity: ``run_with_parity(compare_analysis=True)``
feeds both loops' traces through the critical-path analyzer and the SLO
burn-rate monitor, asserts every request's latency tiling telescopes
bit-exactly to its committed latency, and compares the rendered
attribution and alert timelines line for line.  These tests drive that
contract through every parity-suite scenario shape — churn + predictive
admission, wfq + max_inflight contention, the array engine, and sharded
worker pools — and then re-run the analyzer on the kept tracer to pin
non-vacuity (real requests, real lanes, real contention).
"""

from __future__ import annotations

import pytest

from repro.devices.specs import make_cluster
from repro.experiments.scenarios import generate_scenario
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.obs.analysis import analyze_serving
from repro.obs.slo import SLOMonitor
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.faults import RetryPolicy
from repro.runtime.plan import DistributionPlan
from repro.runtime.shard import ShardedPlanEvaluator
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    TenantSpec,
    run_with_parity,
)

CHURN = "churn:events=crash:0@120;leave:1@400;join:0@900"
RETRY = RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7)
POLICY = ClusterPolicy(
    discipline="wfq",
    admission="predictive",
    on_predicted_miss="requeue",
    max_inflight=4,
)


@pytest.fixture(scope="module")
def fleet():
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70), ("nano", 70)])
    return devices, NetworkModel.constant_from_devices(devices)


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


def tenants_for(model, devices):
    return [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=3.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            slo=SLO(deadline_ms=60.0),
            weight=1.0,
        ),
    ]


def assert_analysis_nonvacuous(report, tracer, *, want_lanes=True):
    """The parity pass already asserted exactness; pin that it saw real work."""
    analysis = analyze_serving(report, tracer)
    analysis.check_exact()
    assert analysis.num_requests == report.total_completed > 0
    if want_lanes:
        assert analysis.lanes, "contended run attributed no lane time"
        assert analysis.contended_requests > 0
    return analysis


class TestAnalysisParity:
    def test_churn_plus_predictive_admission(self, model, fleet):
        devices, network = fleet
        tracer = Tracer()
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            policy=POLICY,
            faults=CHURN,
            retry=RETRY,
            tracer=tracer,
            compare_analysis=True,
        )
        analysis = assert_analysis_nonvacuous(report, tracer)
        assert report.faults is not None and report.faults.num_crashes == 1
        # The fault path is visible in the rollups, not just the report.
        assert analysis.total("retries") + analysis.total("abandons") > 0

    def test_array_engine_matches_reference_interpretation(self, model, fleet):
        devices, network = fleet
        tracer = Tracer()
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            policy=POLICY,
            engine="array",
            faults=CHURN,
            retry=RETRY,
            tracer=tracer,
            compare_analysis=True,
        )
        assert_analysis_nonvacuous(report, tracer)

    def test_wfq_with_max_inflight_gate(self, model, fleet):
        devices, network = fleet
        tracer = Tracer()
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            policy=ClusterPolicy(discipline="wfq", max_inflight=2),
            tracer=tracer,
            compare_analysis=True,
        )
        analysis = assert_analysis_nonvacuous(report, tracer)
        # The inflight gate actually throttled someone.
        assert analysis.total("gate") > 0.0

    def test_sharded_worker_pools(self, model):
        scenario = generate_scenario(4, seed=11, bandwidth_mbps=200.0, heterogeneity="nano")
        with ShardedPlanEvaluator(scenario, num_workers=2, min_shard_size=1) as sharded:
            devices, network = sharded.devices, sharded.network
            tenants = [
                TenantSpec(
                    "s0",
                    DistributionPlan.single_device(model, devices, 0),
                    traffic=PoissonArrivals(5.0, seed=1),
                ),
                TenantSpec(
                    "s1",
                    DistributionPlan.single_device(model, devices, 1),
                    traffic=PoissonArrivals(5.0, seed=2),
                ),
            ]
            tracer = Tracer()
            report = run_with_parity(
                sharded,
                PlanEvaluator(devices, network),
                tenants,
                duration_s=6.0,
                tracer=tracer,
                compare_analysis=True,
            )
            # Uncontended run: the tiling is a single service segment per
            # request, still required to telescope exactly.
            assert_analysis_nonvacuous(report, tracer, want_lanes=False)

    def test_alert_timeline_is_reproducible_from_the_report(self, model, fleet):
        """The timeline compared inside the parity run is a pure function."""
        devices, network = fleet
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            policy=POLICY,
            faults=CHURN,
            retry=RETRY,
            compare_analysis=True,
        )
        monitor = SLOMonitor()
        assert monitor.evaluate(report).lines() == monitor.evaluate(report).lines()

    def test_compare_analysis_requires_traces(self, model, fleet):
        devices, network = fleet
        with pytest.raises(ValueError, match="compare_traces"):
            run_with_parity(
                BatchPlanEvaluator(devices, network),
                PlanEvaluator(devices, network),
                tenants_for(model, devices),
                duration_s=1.0,
                compare_traces=False,
                compare_analysis=True,
            )
