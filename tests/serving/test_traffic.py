"""Property tests for the arrival processes and the ``traffic:`` grammar."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving.traffic import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    parse_traffic_spec,
    resolve_traffic,
)

ALL_PROCESSES = [
    PoissonArrivals(rate_rps=5.0, seed=3),
    MMPPArrivals(low_rps=1.0, high_rps=20.0, dwell_low_s=10.0, dwell_high_s=4.0, seed=3),
    DiurnalArrivals(base_rps=1.0, peak_rps=10.0, period_s=120.0, seed=3),
    TraceArrivals(offsets_s=(0.1, 0.5, 0.5, 1.2, 7.0)),
]


class TestDeterminism:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_repeated_calls_are_identical(self, process):
        a = process.arrival_times(30.0)
        b = process.arrival_times(30.0)
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(0.2, 50.0))
    def test_same_seed_same_arrivals(self, seed, rate):
        a = PoissonArrivals(rate_rps=rate, seed=seed).arrival_times(10.0)
        b = PoissonArrivals(rate_rps=rate, seed=seed).arrival_times(10.0)
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**31 - 1))
    def test_mmpp_same_seed_same_arrivals(self, seed):
        make = lambda: MMPPArrivals(low_rps=0.5, high_rps=15.0, seed=seed)  # noqa: E731
        assert np.array_equal(make().arrival_times(20.0), make().arrival_times(20.0))

    @given(start=st.floats(0.0, 1e4))
    def test_start_offset_shifts_without_resampling(self, start):
        process = PoissonArrivals(rate_rps=5.0, seed=1)
        base = process.arrival_times(10.0, start_s=0.0)
        shifted = process.arrival_times(10.0, start_s=start)
        assert np.allclose(shifted - start, base)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_arrivals_sorted_and_inside_window(self, process):
        times = process.arrival_times(25.0, start_s=100.0)
        assert np.all(np.diff(times) >= 0)
        if times.size:
            assert times[0] >= 100.0
            assert times[-1] < 125.0


class TestEmpiricalRates:
    @pytest.mark.parametrize("rate", [1.0, 5.0, 20.0])
    def test_poisson_rate_within_tolerance(self, rate):
        # Long window (expected count >= 500) and a fixed seed: the empirical
        # rate must sit within 15% of the configured one.
        duration = max(500.0 / rate, 50.0)
        times = PoissonArrivals(rate_rps=rate, seed=7).arrival_times(duration)
        assert times.size / duration == pytest.approx(rate, rel=0.15)

    def test_mmpp_mean_rate_within_tolerance(self):
        process = MMPPArrivals(low_rps=1.0, high_rps=20.0, dwell_low_s=10.0, dwell_high_s=10.0, seed=11)
        duration = 2000.0
        times = process.arrival_times(duration)
        assert times.size / duration == pytest.approx(process.mean_rate_rps, rel=0.2)

    def test_diurnal_mean_rate_over_whole_periods(self):
        process = DiurnalArrivals(base_rps=2.0, peak_rps=10.0, period_s=100.0, seed=13)
        duration = 2000.0  # 20 whole periods
        times = process.arrival_times(duration)
        assert times.size / duration == pytest.approx(process.mean_rate_rps, rel=0.2)

    def test_diurnal_peaks_mid_period(self):
        process = DiurnalArrivals(base_rps=0.5, peak_rps=20.0, period_s=100.0, seed=13)
        times = process.arrival_times(1000.0)
        phase = np.mod(times, 100.0)
        mid = ((phase > 25) & (phase < 75)).sum()
        edges = times.size - mid
        assert mid > 2 * edges  # the raised-cosine mass sits mid-period

    def test_mmpp_is_burstier_than_poisson(self):
        # Same mean rate; the MMPP inter-arrival CV must exceed Poisson's ~1.
        mmpp = MMPPArrivals(low_rps=0.2, high_rps=30.0, dwell_low_s=20.0, dwell_high_s=2.0, seed=5)
        poisson = PoissonArrivals(rate_rps=mmpp.mean_rate_rps, seed=5)
        gaps_m = np.diff(mmpp.arrival_times(2000.0))
        gaps_p = np.diff(poisson.arrival_times(2000.0))
        cv = lambda g: g.std() / g.mean()  # noqa: E731
        assert cv(gaps_m) > 1.3 * cv(gaps_p)


class TestGrammar:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_spec_round_trip(self, process):
        rebuilt = parse_traffic_spec(process.spec)
        assert rebuilt == process
        assert rebuilt.spec == process.spec
        assert np.array_equal(rebuilt.arrival_times(15.0), process.arrival_times(15.0))

    def test_kind_as_key_and_bursty_alias(self):
        a = parse_traffic_spec("traffic:kind=mmpp,low=1,high=5")
        b = parse_traffic_spec("traffic:bursty,low=1,high=5")
        assert a == b

    def test_resolve_passes_processes_through(self):
        process = PoissonArrivals(rate_rps=2.0)
        assert resolve_traffic(process) is process
        assert resolve_traffic("traffic:poisson,rate=2") == process

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("poisson,rate=5", "must start with"),
            ("traffic:", "empty traffic spec"),
            ("traffic:warp,rate=5", "unknown traffic kind"),
            ("traffic:poisson,ratio=5", "unknown traffic option"),
            ("traffic:poisson,rate=fast", "not a number"),
            ("traffic:poisson,seed=1.5", "not an integer"),
            ("traffic:poisson,rate", "expected key=value"),
            ("traffic:poisson,rate=1,rate=2", "duplicate traffic option"),
            ("traffic:rate=5", "names no kind"),
            ("traffic:trace", "requires times"),
            ("traffic:trace,times=1;zz", "non-number"),
            ("traffic:trace,times=3;1", "non-decreasing"),
            ("traffic:poisson,rate=0", "rate_rps must be > 0"),
            ("traffic:mmpp,low=5,high=2", "high_rps must exceed"),
            ("traffic:diurnal,base=5,peak=2", "peak_rps must be positive and >="),
        ],
    )
    def test_malformed_specs_raise_with_useful_message(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_traffic_spec(spec)


class TestTraceEdgeCases:
    """Trace replays with unsorted/duplicate timestamps."""

    def test_unsorted_offsets_rejected_everywhere(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceArrivals(offsets_s=(1.0, 0.5, 2.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            parse_traffic_spec("traffic:trace,times=1;0.5;2")
        with pytest.raises(ValueError, match=">= 0"):
            TraceArrivals(offsets_s=(-0.1, 0.5))

    def test_duplicate_offsets_are_all_replayed(self):
        trace = TraceArrivals(offsets_s=(0.5, 0.5, 0.5, 1.0, 1.0))
        times = trace.arrival_times(5.0, start_s=10.0)
        assert times.tolist() == [10.5, 10.5, 10.5, 11.0, 11.0]
        # The spec grammar round-trips duplicates untouched.
        assert parse_traffic_spec(trace.spec) == trace

    def test_duplicate_arrivals_are_all_served(self):
        """Tied timestamps queue behind each other and each completes."""
        from repro.devices.specs import make_cluster
        from repro.network.topology import NetworkModel
        from repro.nn import model_zoo
        from repro.runtime.batch import BatchPlanEvaluator
        from repro.runtime.evaluator import PlanEvaluator
        from repro.runtime.plan import DistributionPlan
        from repro.serving import ServingSimulator, TenantSpec, run_with_parity

        model = model_zoo.small_vgg(32)
        devices = make_cluster([("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenant = TenantSpec(
            "dup",
            DistributionPlan.single_device(model, devices, 0),
            traffic=TraceArrivals(offsets_s=(0.2, 0.2, 0.2, 0.4, 0.4)),
        )
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            [tenant],
            duration_s=1.0,
        )
        dup = report.tenant("dup")
        assert dup.num_arrivals == 5
        assert dup.num_completed == 5
        # The tied arrivals serialise on the tenant's service slot.
        assert np.all(np.diff(dup.start_s) >= 0)
        assert dup.start_s[1] > dup.arrival_s[1]
        # Admission control sees the duplicates as simultaneous queue growth.
        capped = TenantSpec(
            "capped",
            DistributionPlan.single_device(model, devices, 0),
            traffic=TraceArrivals(offsets_s=(0.2, 0.2, 0.2, 0.2)),
            queue_capacity=2,
        )
        capped_report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
            [capped], duration_s=1.0
        )
        t = capped_report.tenant("capped")
        assert t.num_arrivals == 4
        assert t.num_rejected > 0
        assert t.num_completed == t.num_admitted

    def test_trace_beyond_duration_is_dropped(self):
        trace = TraceArrivals(offsets_s=(0.1, 0.2, 9.9))
        assert trace.arrival_times(1.0).size == 2


class TestZeroRateSegments:
    """``traffic:`` specs whose rate profile touches zero."""

    def test_mmpp_zero_low_rate_is_silent_between_bursts(self):
        process = parse_traffic_spec(
            "traffic:mmpp,low=0,high=40,dwell_low=5,dwell_high=1,seed=3"
        )
        assert process.low_rps == 0.0
        times = process.arrival_times(200.0)
        assert times.size > 0
        # With dwell_low >> dwell_high and a silent quiet state, arrivals
        # cluster: long inter-burst gaps must dominate the time axis.
        gaps = np.diff(times)
        assert gaps.max() > 2.0
        assert process.mean_rate_rps == pytest.approx(40.0 / 6.0)
        # Round-trip through the grammar preserves the zero rate.
        assert parse_traffic_spec(process.spec) == process

    def test_diurnal_zero_base_rate_troughs_empty(self):
        process = parse_traffic_spec("traffic:diurnal,base=0,peak=20,period=100,seed=5")
        assert process.rate_at(0.0) == 0.0
        times = process.arrival_times(1000.0)
        assert times.size > 0
        phase = np.mod(times, 100.0)
        # The trough (rate -> 0) must be nearly empty relative to the peak.
        trough = ((phase < 5) | (phase > 95)).sum()
        peak = ((phase > 45) & (phase < 55)).sum()
        assert peak > 5 * max(trough, 1)

    def test_zero_rate_tenant_completes_cleanly(self):
        """An MMPP tenant whose quiet state is silent still simulates."""
        from repro.devices.specs import make_cluster
        from repro.network.topology import NetworkModel
        from repro.nn import model_zoo
        from repro.runtime.batch import BatchPlanEvaluator
        from repro.runtime.evaluator import PlanEvaluator
        from repro.runtime.plan import DistributionPlan
        from repro.serving import TenantSpec, run_with_parity

        model = model_zoo.small_vgg(32)
        devices = make_cluster([("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        tenant = TenantSpec(
            "quiet",
            DistributionPlan.single_device(model, devices, 0),
            traffic=parse_traffic_spec(
                "traffic:mmpp,low=0,high=30,dwell_low=2,dwell_high=0.5,seed=9"
            ),
        )
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            [tenant],
            duration_s=10.0,
        )
        quiet = report.tenant("quiet")
        assert quiet.num_completed == quiet.num_arrivals > 0

    def test_all_silent_process_yields_no_arrivals(self):
        process = MMPPArrivals(low_rps=0.0, high_rps=5.0, dwell_low_s=1e6, dwell_high_s=1.0, seed=0)
        assert process.arrival_times(10.0).size == 0
