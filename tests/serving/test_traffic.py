"""Property tests for the arrival processes and the ``traffic:`` grammar."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving.traffic import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    parse_traffic_spec,
    resolve_traffic,
)

ALL_PROCESSES = [
    PoissonArrivals(rate_rps=5.0, seed=3),
    MMPPArrivals(low_rps=1.0, high_rps=20.0, dwell_low_s=10.0, dwell_high_s=4.0, seed=3),
    DiurnalArrivals(base_rps=1.0, peak_rps=10.0, period_s=120.0, seed=3),
    TraceArrivals(offsets_s=(0.1, 0.5, 0.5, 1.2, 7.0)),
]


class TestDeterminism:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_repeated_calls_are_identical(self, process):
        a = process.arrival_times(30.0)
        b = process.arrival_times(30.0)
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(0.2, 50.0))
    def test_same_seed_same_arrivals(self, seed, rate):
        a = PoissonArrivals(rate_rps=rate, seed=seed).arrival_times(10.0)
        b = PoissonArrivals(rate_rps=rate, seed=seed).arrival_times(10.0)
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**31 - 1))
    def test_mmpp_same_seed_same_arrivals(self, seed):
        make = lambda: MMPPArrivals(low_rps=0.5, high_rps=15.0, seed=seed)  # noqa: E731
        assert np.array_equal(make().arrival_times(20.0), make().arrival_times(20.0))

    @given(start=st.floats(0.0, 1e4))
    def test_start_offset_shifts_without_resampling(self, start):
        process = PoissonArrivals(rate_rps=5.0, seed=1)
        base = process.arrival_times(10.0, start_s=0.0)
        shifted = process.arrival_times(10.0, start_s=start)
        assert np.allclose(shifted - start, base)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_arrivals_sorted_and_inside_window(self, process):
        times = process.arrival_times(25.0, start_s=100.0)
        assert np.all(np.diff(times) >= 0)
        if times.size:
            assert times[0] >= 100.0
            assert times[-1] < 125.0


class TestEmpiricalRates:
    @pytest.mark.parametrize("rate", [1.0, 5.0, 20.0])
    def test_poisson_rate_within_tolerance(self, rate):
        # Long window (expected count >= 500) and a fixed seed: the empirical
        # rate must sit within 15% of the configured one.
        duration = max(500.0 / rate, 50.0)
        times = PoissonArrivals(rate_rps=rate, seed=7).arrival_times(duration)
        assert times.size / duration == pytest.approx(rate, rel=0.15)

    def test_mmpp_mean_rate_within_tolerance(self):
        process = MMPPArrivals(low_rps=1.0, high_rps=20.0, dwell_low_s=10.0, dwell_high_s=10.0, seed=11)
        duration = 2000.0
        times = process.arrival_times(duration)
        assert times.size / duration == pytest.approx(process.mean_rate_rps, rel=0.2)

    def test_diurnal_mean_rate_over_whole_periods(self):
        process = DiurnalArrivals(base_rps=2.0, peak_rps=10.0, period_s=100.0, seed=13)
        duration = 2000.0  # 20 whole periods
        times = process.arrival_times(duration)
        assert times.size / duration == pytest.approx(process.mean_rate_rps, rel=0.2)

    def test_diurnal_peaks_mid_period(self):
        process = DiurnalArrivals(base_rps=0.5, peak_rps=20.0, period_s=100.0, seed=13)
        times = process.arrival_times(1000.0)
        phase = np.mod(times, 100.0)
        mid = ((phase > 25) & (phase < 75)).sum()
        edges = times.size - mid
        assert mid > 2 * edges  # the raised-cosine mass sits mid-period

    def test_mmpp_is_burstier_than_poisson(self):
        # Same mean rate; the MMPP inter-arrival CV must exceed Poisson's ~1.
        mmpp = MMPPArrivals(low_rps=0.2, high_rps=30.0, dwell_low_s=20.0, dwell_high_s=2.0, seed=5)
        poisson = PoissonArrivals(rate_rps=mmpp.mean_rate_rps, seed=5)
        gaps_m = np.diff(mmpp.arrival_times(2000.0))
        gaps_p = np.diff(poisson.arrival_times(2000.0))
        cv = lambda g: g.std() / g.mean()  # noqa: E731
        assert cv(gaps_m) > 1.3 * cv(gaps_p)


class TestGrammar:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_spec_round_trip(self, process):
        rebuilt = parse_traffic_spec(process.spec)
        assert rebuilt == process
        assert rebuilt.spec == process.spec
        assert np.array_equal(rebuilt.arrival_times(15.0), process.arrival_times(15.0))

    def test_kind_as_key_and_bursty_alias(self):
        a = parse_traffic_spec("traffic:kind=mmpp,low=1,high=5")
        b = parse_traffic_spec("traffic:bursty,low=1,high=5")
        assert a == b

    def test_resolve_passes_processes_through(self):
        process = PoissonArrivals(rate_rps=2.0)
        assert resolve_traffic(process) is process
        assert resolve_traffic("traffic:poisson,rate=2") == process

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("poisson,rate=5", "must start with"),
            ("traffic:", "empty traffic spec"),
            ("traffic:warp,rate=5", "unknown traffic kind"),
            ("traffic:poisson,ratio=5", "unknown traffic option"),
            ("traffic:poisson,rate=fast", "not a number"),
            ("traffic:poisson,seed=1.5", "not an integer"),
            ("traffic:poisson,rate", "expected key=value"),
            ("traffic:poisson,rate=1,rate=2", "duplicate traffic option"),
            ("traffic:rate=5", "names no kind"),
            ("traffic:trace", "requires times"),
            ("traffic:trace,times=1;zz", "non-number"),
            ("traffic:trace,times=3;1", "non-decreasing"),
            ("traffic:poisson,rate=0", "rate_rps must be > 0"),
            ("traffic:mmpp,low=5,high=2", "high_rps must exceed"),
            ("traffic:diurnal,base=5,peak=2", "peak_rps must be positive and >="),
        ],
    )
    def test_malformed_specs_raise_with_useful_message(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_traffic_spec(spec)
