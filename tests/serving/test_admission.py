"""Predictive deny-at-admission: parity, accounting and requeue semantics.

The control plane's admission gate runs *inside* the contended serving
loop, so its acceptance bar is the same bit-parity contract as the loop
itself: with ``ClusterPolicy(admission="predictive")`` the reference,
batched and array loops must produce identical reports — denials,
requeues, window series and all — under every dispatch discipline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    ParityMismatch,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    TraceArrivals,
    assert_reports_equal,
    run_with_parity,
)
from repro.serving.tenants import TenantRuntime


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def fleet():
    devices = make_cluster([("nano", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    return devices, network


def _saturating_tenants(model, devices):
    """Three tenants offering well past the two-nano fleet's capacity.

    A single nano serves small_vgg in ~4.4 ms (~227 req/s); 350 req/s of
    aggregate offered load with 20/40 ms deadlines forces the predictive
    gate to intervene, while the SLO-free tenant must never be touched.
    """
    return [
        TenantSpec(
            "tight",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(200.0, seed=11),
            slo=SLO(deadline_ms=20.0),
            weight=2.0,
        ),
        TenantSpec(
            "loose",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(100.0, seed=12),
            slo=SLO(deadline_ms=40.0),
            weight=1.0,
        ),
        TenantSpec(
            "noslo",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(50.0, seed=13),
        ),
    ]


def _run(fleet, model, policy, mode="batched", engine="object", duration=2.0):
    devices, network = fleet
    evaluator = BatchPlanEvaluator(devices, network)
    return ServingSimulator(evaluator).run(
        _saturating_tenants(model, devices),
        duration_s=duration,
        mode=mode,
        policy=policy,
        engine=engine,
    )


# --------------------------------------------------------------------- #
# parity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("discipline", ["fifo", "deadline", "wfq"])
@pytest.mark.parametrize("action", ["reject", "requeue"])
@pytest.mark.parametrize("engine", ["object", "array"])
def test_predictive_admission_parity(fleet, model, discipline, action, engine):
    """Reference, batched and array loops agree bit-for-bit with admission on."""
    devices, network = fleet
    policy = ClusterPolicy(
        discipline=discipline, admission="predictive", on_predicted_miss=action
    )
    report = run_with_parity(
        BatchPlanEvaluator(devices, network),
        PlanEvaluator(devices, network),
        _saturating_tenants(model, devices),
        duration_s=2.0,
        policy=policy,
        engine=engine,
    )
    assert report.admission == "predictive"
    assert report.on_predicted_miss == action
    assert report.total_denied > 0


def test_admission_metadata_mismatch_raises(fleet, model):
    """assert_reports_equal treats admission config as part of identity."""
    base = _run(fleet, model, ClusterPolicy(admission="predictive"))
    other = _run(fleet, model, ClusterPolicy(admission="none"))
    with pytest.raises(ParityMismatch):
        assert_reports_equal(base, other)


# --------------------------------------------------------------------- #
# accounting
# --------------------------------------------------------------------- #


def test_denials_eliminate_misses_and_are_counted(fleet, model):
    baseline = _run(fleet, model, ClusterPolicy())
    gated = _run(fleet, model, ClusterPolicy(admission="predictive"))
    # The ungated run misses massively; the gate converts those misses
    # into denials and every admitted request meets its deadline (the
    # prediction is the exact schedule, so it cannot be wrong).
    assert baseline.deadline_miss_rate > 0.3
    assert gated.deadline_miss_rate == 0.0
    assert gated.total_denied > 0
    by_name = {t.name: t for t in gated.tenants}
    assert by_name["noslo"].num_denied == 0  # no SLO, never intercepted
    assert sum(t.num_denied for t in gated.tenants) == gated.total_denied
    for tenant in gated.tenants:
        assert len(tenant.denied_times_s) == tenant.num_denied
        assert list(tenant.denied_times_s) == sorted(tenant.denied_times_s)


def test_denials_survive_to_dict(fleet, model):
    gated = _run(fleet, model, ClusterPolicy(admission="predictive"))
    payload = gated.to_dict()
    assert payload["admission"] == "predictive"
    assert payload["on_predicted_miss"] == "reject"
    assert payload["total_denied"] == gated.total_denied
    per_tenant = {t["name"]: t for t in payload["tenants"]}
    for tenant in gated.tenants:
        assert per_tenant[tenant.name]["num_denied"] == tenant.num_denied


def test_requeue_defers_or_denies(fleet, model):
    rejected = _run(
        fleet, model, ClusterPolicy(admission="predictive", on_predicted_miss="reject")
    )
    requeued = _run(
        fleet, model, ClusterPolicy(admission="predictive", on_predicted_miss="requeue")
    )
    # Requeueing gives intercepted requests a second chance at the fleet's
    # next lane-free event; a deadline unmeetable even then is still denied
    # (the run must terminate), so saturation keeps both counts positive.
    # The two schedules diverge after the first interception, so the counts
    # are not pointwise comparable — but the gate's guarantee (no admitted
    # request misses) holds for both.
    assert rejected.total_denied > 0
    assert requeued.total_denied > 0
    assert rejected.deadline_miss_rate == 0.0
    assert requeued.deadline_miss_rate == 0.0


def test_open_loop_denial_preserves_arrival_count(fleet, model):
    """Denied open-loop arrivals still appear in num_arrivals."""
    gated = _run(fleet, model, ClusterPolicy(admission="predictive"))
    for tenant in gated.tenants:
        assert (
            tenant.num_completed + tenant.num_rejected + tenant.num_denied
            <= tenant.num_arrivals
        )
        assert tenant.num_arrivals > 0


# --------------------------------------------------------------------- #
# windowed fleet-load series
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("window_ms", [250.0, 1000.0])
def test_window_series_sums_to_run_totals(fleet, model, window_ms):
    policy = ClusterPolicy(admission="predictive", window_ms=window_ms)
    report = _run(fleet, model, policy)
    series = report.fleet.series
    assert series is not None
    assert series.window_ms == window_ms
    for role in ("compute", "send", "recv"):
        busy = getattr(series, f"{role}_busy_ms")
        wait = getattr(series, f"{role}_wait_ms")
        np.testing.assert_allclose(
            busy.sum(axis=0), getattr(report.fleet, f"{role}_busy_ms"), rtol=1e-9
        )
        np.testing.assert_allclose(
            wait.sum(axis=0), getattr(report.fleet, f"{role}_wait_ms"), rtol=1e-9
        )
    assert int(series.released.sum()) == report.fleet.requests


def test_window_series_is_part_of_parity(fleet, model):
    """run_with_parity holds with the series attached, and a width change trips it."""
    devices, network = fleet
    policy = ClusterPolicy(admission="predictive", window_ms=500.0)
    report = run_with_parity(
        BatchPlanEvaluator(devices, network),
        PlanEvaluator(devices, network),
        _saturating_tenants(model, devices),
        duration_s=2.0,
        policy=policy,
    )
    assert report.fleet.series is not None
    other = _run(fleet, model, ClusterPolicy(admission="predictive", window_ms=250.0))
    with pytest.raises(ParityMismatch):
        assert_reports_equal(report, other)
    bare = _run(fleet, model, ClusterPolicy(admission="predictive"))
    assert bare.fleet.series is None
    with pytest.raises(ParityMismatch):
        assert_reports_equal(report, bare)


# --------------------------------------------------------------------- #
# tenant-level deny / defer primitives
# --------------------------------------------------------------------- #


def _open_loop_runtime(model, devices, offsets, **spec_kwargs):
    spec = TenantSpec(
        "t",
        DistributionPlan.single_device(model, devices, 0),
        traffic=TraceArrivals(offsets),
        **spec_kwargs,
    )
    return TenantRuntime(spec, start_s=0.0, duration_s=10.0)


def test_deny_pending_open_loop_pops_queue(fleet, model):
    devices, _ = fleet
    runtime = _open_loop_runtime(model, devices, (0.0, 0.1, 0.2))
    dispatch = runtime.prepare()
    runtime.deny_pending()
    assert runtime.denied_times == [dispatch.start_s]
    # The denied request left the queue: the next dispatch is arrival #2.
    nxt = runtime.prepare()
    assert nxt.arrival_s == pytest.approx(0.1)
    # Denial consumed no service slot — the next start is its own arrival,
    # not shifted by any service time.
    assert nxt.start_s == pytest.approx(0.1)


def test_deny_pending_closed_loop_consumes_request_budget(fleet, model):
    devices, _ = fleet
    spec = TenantSpec(
        "closed",
        DistributionPlan.single_device(model, devices, 0),
        traffic=None,
        max_requests=2,
        slo=SLO(deadline_ms=1.0),
    )
    runtime = TenantRuntime(spec, start_s=0.0, duration_s=None)
    runtime.prepare()
    runtime.deny_pending()
    runtime.prepare()
    runtime.deny_pending()
    # Both issued requests were denied; the chain terminates instead of
    # spinning on a deadline that can never be met.
    assert runtime.prepare() is None
    assert runtime.done
    report = runtime.report()
    assert report.num_denied == 2
    assert report.num_completed == 0
    assert report.num_arrivals == 2


def test_defer_pending_requires_strictly_later_start(fleet, model):
    devices, _ = fleet
    runtime = _open_loop_runtime(model, devices, (0.0,))
    dispatch = runtime.prepare()
    with pytest.raises(ValueError):
        runtime.defer_pending(dispatch.start_s)
    deferred = runtime.defer_pending(dispatch.start_s + 0.05)
    assert deferred.arrival_s == dispatch.arrival_s
    assert deferred.start_s == pytest.approx(dispatch.start_s + 0.05)
    assert deferred.plan is dispatch.plan
    # The deferred dispatch is still the pending one; committing it records
    # the response against the original arrival.
    runtime.commit(10.0)
    assert runtime.responses_ms[0] == pytest.approx(
        (deferred.start_s + 0.010 - dispatch.arrival_s) * 1000.0
    )


def test_defer_pending_admits_arrivals_up_to_new_start(fleet, model):
    devices, _ = fleet
    runtime = _open_loop_runtime(model, devices, (0.0, 0.02, 0.04), queue_capacity=2)
    runtime.prepare()
    # The pending head still occupies the queue, so capacity 2 leaves room
    # for exactly one of the two later arrivals: deferring past both admits
    # 0.02 and rejects 0.04 — exactly what prepare() at the new start would
    # have done.
    runtime.defer_pending(0.05)
    assert runtime.arrivals_seen == 3
    assert len(runtime.rejected_times) == 1


def test_deny_without_pending_raises(fleet, model):
    devices, _ = fleet
    runtime = _open_loop_runtime(model, devices, (0.0,))
    with pytest.raises(RuntimeError):
        runtime.deny_pending()
    with pytest.raises(RuntimeError):
        runtime.defer_pending(1.0)
