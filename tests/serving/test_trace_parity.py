"""Trace-level parity: every loop's trace is byte-identical.

The report-level parity contract says the reference, epoch-batched and
array loops commit the same floats.  The trace-level contract asserted
here is stronger in surface area: the *entire event stream* — derived
lifecycle events plus the live-emitted contended lane segments, requeues,
retry chains and fault timeline — must serialise to identical bytes
(:meth:`Tracer.lines`) across loops, on a scenario that exercises churn,
contention and predictive admission at once.  ``run_with_parity`` now
checks this by default; these tests pin the mechanism itself.
"""

from __future__ import annotations

import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.obs import Tracer
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.faults import RetryPolicy
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    ParityMismatch,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    assert_traces_equal,
    run_with_parity,
)

CHURN = "churn:events=crash:0@120;leave:1@400;join:0@900"
RETRY = RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7)
POLICY = ClusterPolicy(
    discipline="wfq",
    admission="predictive",
    on_predicted_miss="requeue",
    max_inflight=4,
)


@pytest.fixture(scope="module")
def fleet():
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70), ("nano", 70)])
    return devices, NetworkModel.constant_from_devices(devices)


def tenants_for(model, devices):
    return [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=3.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            slo=SLO(deadline_ms=60.0),
            weight=1.0,
        ),
    ]


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


class TestTraceParity:
    def test_object_engine_trace_parity_under_churned_admission(self, model, fleet):
        devices, network = fleet
        tracer = Tracer()
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            policy=POLICY,
            faults=CHURN,
            retry=RETRY,
            tracer=tracer,
        )
        # The passed tracer holds the batched loop's trace after the run.
        assert tracer.events, "parity run produced an empty trace"
        assert report.faults is not None and report.faults.num_crashes == 1
        kinds = {(e.kind, e.name) for e in tracer.events}
        assert ("fault", "crash") in kinds
        assert ("request", "serve") in kinds

    def test_array_engine_trace_parity_under_churned_admission(self, model, fleet):
        devices, network = fleet
        tracer = Tracer()
        run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants_for(model, devices),
            duration_s=2.0,
            engine="array",
            faults=CHURN,
            retry=RETRY,
            tracer=tracer,
        )
        assert tracer.events

    def test_independent_runs_trace_identically(self, model, fleet):
        """Two separate simulators, any modes: same bytes, line for line."""
        devices, network = fleet
        traces = []
        for mode in ("batched", "reference"):
            tracer = Tracer()
            ServingSimulator(BatchPlanEvaluator(devices, network)).run(
                tenants_for(model, devices),
                duration_s=2.0,
                mode=mode,
                policy=POLICY,
                faults=CHURN,
                retry=RETRY,
                tracer=tracer,
            )
            traces.append(tracer)
        assert_traces_equal(traces[0], traces[1])
        assert traces[0].lines() == traces[1].lines()

    def test_assert_traces_equal_catches_a_single_flipped_bit(self):
        a, b = Tracer(), Tracer()
        a.instant(1.0, "tenant:x", "request", "arrive")
        b.instant(1.0 + 1e-12, "tenant:x", "request", "arrive")
        with pytest.raises(ParityMismatch):
            assert_traces_equal(a, b)

    def test_run_with_parity_rejects_a_dirty_tracer(self, model, fleet):
        devices, network = fleet
        dirty = Tracer()
        dirty.instant(0.0, "tenant:x", "request", "arrive")
        with pytest.raises(ValueError):
            run_with_parity(
                BatchPlanEvaluator(devices, network),
                PlanEvaluator(devices, network),
                tenants_for(model, devices),
                duration_s=0.5,
                tracer=dirty,
            )
