"""Churn-aware serving: parity, crash-boundary edge cases, conservation.

The fault subsystem's acceptance bar: on a fleet that crashes mid-run, the
reference, epoch-batched and array serving loops must agree float-for-float
on every request — including requests killed mid-inference, retried on a
replanned strategy, abandoned at their retry budget, or shed by the
degradation policy.  The boundary cases (crash exactly at a completion
tick, during an admission-gate wait, under an uncommitted speculation
window) each get a dedicated parity test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.faults import (
    DegradationPolicy,
    FaultEvent,
    FaultTrace,
    RetryPolicy,
)
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    ServingSimulator,
    TenantSpec,
    run_with_parity,
)

CHURN = "churn:events=crash:0@120;leave:1@400;join:0@900;crash:2@1200"
RETRY = RetryPolicy(max_attempts=3, backoff_ms=20.0, jitter_ms=5.0, seed=7)
DEGRADE = DegradationPolicy(min_live_fraction=0.8)


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def fleet(model):
    devices = make_cluster([("nano", 70), ("nano", 70), ("tx2", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    return devices, network


def churn_tenants(model, devices):
    return [
        TenantSpec(
            "alpha",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(120.0, seed=3),
            slo=SLO(deadline_ms=40.0),
            weight=3.0,
        ),
        TenantSpec(
            "beta",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(80.0, seed=4),
            weight=1.0,
        ),
        TenantSpec(
            "closed",
            DistributionPlan.single_device(model, devices, 2),
            max_requests=40,
            gap_ms=5.0,
            weight=2.0,
        ),
    ]


def assert_conserved(report):
    """No request may vanish: every arrival ends in exactly one bucket."""
    for t in report.tenants:
        accounted = (
            t.num_completed + t.num_rejected + t.num_denied
            + t.num_abandoned + t.num_shed
        )
        assert accounted == t.num_arrivals, (
            f"{t.name}: {t.num_arrivals} arrivals but {accounted} accounted"
        )


class TestChurnParity:
    """All three loops on one crashing fleet, bit-identically."""

    def test_object_engine_parity_with_mid_inference_crash(self, model, fleet):
        devices, network = fleet
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            churn_tenants(model, devices),
            duration_s=2.0,
            faults=CHURN,
            retry=RETRY,
            degradation=DEGRADE,
        )
        faults = report.faults
        assert faults is not None
        assert faults.num_crashes == 2 and faults.live_at_end == 2
        # The scenario is only meaningful if churn actually bit.
        assert faults.lost_attempts > 0
        assert faults.total_shed > 0
        assert_conserved(report)

    def test_array_engine_parity_matches_object_engine(self, model, fleet):
        devices, network = fleet
        kwargs = dict(duration_s=2.0, faults=CHURN, retry=RETRY, degradation=DEGRADE)
        obj = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            churn_tenants(model, devices),
            **kwargs,
        )
        arr = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            churn_tenants(model, devices),
            engine="array",
            **kwargs,
        )
        assert arr.faults == obj.faults
        for a, b in zip(arr.tenants, obj.tenants):
            assert np.array_equal(a.latency_ms, b.latency_ms)
            assert np.array_equal(a.start_s, b.start_s)
            assert a.num_abandoned == b.num_abandoned
            assert a.num_retried == b.num_retried

    def test_contended_parity_with_churn(self, model, fleet):
        devices, network = fleet
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            churn_tenants(model, devices),
            duration_s=2.0,
            policy=ClusterPolicy(discipline="wfq"),
            faults=CHURN,
            retry=RETRY,
            degradation=DEGRADE,
        )
        assert report.faults is not None
        assert_conserved(report)


class TestCrashBoundaries:
    def test_crash_exactly_at_completion_tick_does_not_kill(self, model, fleet):
        devices, network = fleet
        plan = DistributionPlan.single_device(model, devices, 0)
        lat = PlanEvaluator(devices, network).evaluate(plan).end_to_end_ms
        # Device 0 dies at the precise tick its first request completes: the
        # open-interval contract says the request already finished.
        trace = FaultTrace(
            events=(FaultEvent(t_ms=lat, kind="crash", device=0),),
            num_devices=len(devices),
        )
        tenants = [
            TenantSpec("t", plan, max_requests=5, gap_ms=5.0),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=2.0,
            faults=trace,
            retry=RETRY,
        )
        t = report.tenant("t")
        assert t.num_completed == 5
        assert t.num_lost_attempts == 0 and t.num_retried == 0
        # Request 0 kept the oracle's raw latency float, bit-equal.
        assert t.latency_ms[0] == lat
        # Later requests replanned around the dead device and still finished.
        assert report.faults.live_at_end == len(devices) - 1

    def test_crash_strictly_inside_first_request_kills_it(self, model, fleet):
        devices, network = fleet
        plan = DistributionPlan.single_device(model, devices, 0)
        lat = PlanEvaluator(devices, network).evaluate(plan).end_to_end_ms
        trace = FaultTrace(
            events=(FaultEvent(t_ms=lat * 0.5, kind="crash", device=0),),
            num_devices=len(devices),
        )
        tenants = [TenantSpec("t", plan, max_requests=5, gap_ms=5.0)]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=2.0,
            faults=trace,
            retry=RetryPolicy(max_attempts=3, backoff_ms=10.0, jitter_ms=0.0),
        )
        t = report.tenant("t")
        assert t.num_completed == 5
        assert t.num_lost_attempts == 1 and t.num_retried == 1
        # The killed attempt's latency spans crash + backoff + the retry.
        assert t.latency_ms[0] > lat

    def test_crash_during_admission_gate_wait(self, model, fleet):
        """Requests held at the max-inflight gate when the device dies must
        dispatch on the post-churn fleet, bit-identically in both loops."""
        devices, network = fleet
        tenants = churn_tenants(model, devices)
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=2.0,
            policy=ClusterPolicy(discipline="fifo", max_inflight=1),
            faults=CHURN,
            retry=RETRY,
        )
        assert report.fleet is not None
        # The gate was genuinely contended while the fleet churned.
        assert report.fleet.gate_wait_ms > 0
        assert report.faults.num_crashes == 2
        assert_conserved(report)

    def test_speculated_tail_rolls_back_without_losing_requests(self, model, fleet):
        """A crash landing inside an uncommitted array-engine speculation
        window must roll the tail back and re-resolve it, not drop it."""
        devices, network = fleet
        tenants = [
            TenantSpec(
                "hot",
                DistributionPlan.single_device(model, devices, 0),
                traffic=PoissonArrivals(400.0, seed=11),
                slo=SLO(deadline_ms=60.0),
            ),
        ]
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=2.0,
            engine="array",
            faults="churn:events=crash:0@150;join:0@900;crash:0@1300",
            retry=RetryPolicy(max_attempts=4, backoff_ms=10.0, jitter_ms=2.0),
        )
        # Speculation actually ran (windows > 1 committed) AND crashes bit.
        assert report.speculated > 0
        assert report.faults.lost_attempts >= 2
        assert_conserved(report)


class TestNoChurnByteIdentity:
    def test_idle_trace_changes_nothing(self, model, fleet):
        """A trace whose events all land beyond the horizon must reproduce
        the no-churn run float-for-float (the parity contract's base case)."""
        devices, network = fleet
        idle = FaultTrace(
            events=(FaultEvent(t_ms=1e9, kind="crash", device=0),),
            num_devices=len(devices),
        )
        for engine in ("object", "array"):
            plain = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
                churn_tenants(model, devices), duration_s=2.0, engine=engine
            )
            churned = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
                churn_tenants(model, devices),
                duration_s=2.0,
                engine=engine,
                faults=idle,
                retry=RETRY,
                degradation=DEGRADE,
            )
            assert plain.faults is None and churned.faults is not None
            assert churned.faults.lost_attempts == 0
            assert churned.faults.total_shed == 0
            for a, b in zip(plain.tenants, churned.tenants):
                assert np.array_equal(a.start_s, b.start_s)
                assert np.array_equal(a.latency_ms, b.latency_ms)
                assert a.num_completed == b.num_completed
                assert a.num_rejected == b.num_rejected


class TestFaultReportSurface:
    def test_report_to_dict_includes_faults(self, model, fleet):
        devices, network = fleet
        report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
            churn_tenants(model, devices),
            duration_s=2.0,
            faults=CHURN,
            retry=RETRY,
            degradation=DEGRADE,
        )
        data = report.to_dict()
        assert data["faults"]["num_crashes"] == 2
        assert data["faults"]["total_shed"] == report.faults.total_shed
        alpha = data["tenants"][0]
        assert alpha["num_shed"] == report.tenants[0].num_shed

    def test_policies_without_faults_rejected(self, model, fleet):
        devices, network = fleet
        with pytest.raises(ValueError, match="pass faults"):
            ServingSimulator(BatchPlanEvaluator(devices, network)).run(
                churn_tenants(model, devices), duration_s=1.0, retry=RETRY
            )
