"""Tests for the seven baseline planners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AOFLPlanner,
    BASELINE_REGISTRY,
    CoEdgePlanner,
    DeeperThingsPlanner,
    DeepThingsPlanner,
    MeDNNPlanner,
    MoDNNPlanner,
    OffloadPlanner,
)
from repro.baselines.base import bandwidth_vector, capability_vector, pool_boundaries
from repro.baselines.linear_model import LinearLatencyModel
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan


@pytest.fixture(scope="module")
def model():
    return model_zoo.vgg16()


@pytest.fixture(scope="module")
def cluster():
    return make_cluster([("xavier", 300), ("tx2", 200), ("nano", 100), ("pi3", 50)])


@pytest.fixture(scope="module")
def network(cluster):
    return NetworkModel.constant_from_devices(cluster)


@pytest.fixture(scope="module")
def evaluator(cluster, network):
    return PlanEvaluator(cluster, network)


class TestRegistry:
    def test_registry_has_all_seven_baselines(self):
        assert set(BASELINE_REGISTRY) == {
            "coedge",
            "modnn",
            "mednn",
            "deepthings",
            "deeperthings",
            "aofl",
            "offload",
        }

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_every_baseline_produces_valid_evaluable_plan(
        self, name, model, cluster, network, evaluator
    ):
        plan = BASELINE_REGISTRY[name]().plan(model, cluster, network)
        assert isinstance(plan, DistributionPlan)
        assert plan.method == name
        assert plan.num_devices == len(cluster)
        result = evaluator.evaluate(plan)
        assert result.end_to_end_ms > 0
        assert np.isfinite(result.ips)


class TestHelpers:
    def test_capability_vector_from_catalog(self, model, cluster):
        caps = capability_vector(model, cluster)
        assert caps.shape == (4,)
        assert caps[0] > caps[1] > caps[2] > caps[3]

    def test_bandwidth_vector(self, cluster, network):
        bws = bandwidth_vector(cluster, network)
        np.testing.assert_allclose(bws, [300, 200, 100, 50])

    def test_pool_boundaries_vgg(self, model):
        bounds = pool_boundaries(model)
        assert bounds[0] == 0 and bounds[-1] == model.num_spatial_layers
        assert bounds == sorted(set(bounds))
        # VGG-16 has 5 pools, the last one ending the backbone.
        assert len(bounds) == 6


class TestOffload:
    def test_selects_most_capable_device(self, model, cluster, network):
        plan = OffloadPlanner().plan(model, cluster, network)
        rows = plan.assignment(0).decision.rows_per_device()
        assert rows[0] == plan.assignment(0).decision.output_height
        assert plan.head_device == 0


class TestLayerByLayerBaselines:
    def test_modnn_layer_by_layer_partition(self, model, cluster, network):
        plan = MoDNNPlanner().plan(model, cluster, network)
        assert plan.num_volumes == model.num_spatial_layers

    def test_modnn_split_follows_capability(self, model, cluster, network):
        plan = MoDNNPlanner().plan(model, cluster, network)
        rows = np.array(plan.assignment(0).decision.rows_per_device(), dtype=float)
        # Shares ordered like capabilities (xavier most, pi3 least).
        assert rows[0] >= rows[1] >= rows[2] >= rows[3]
        assert rows[0] > 0

    def test_modnn_ignores_bandwidth(self, model, cluster):
        fast_net = NetworkModel.constant_from_devices(cluster)
        slow_first = make_cluster([("xavier", 5), ("tx2", 200), ("nano", 100), ("pi3", 50)])
        slow_net = NetworkModel.constant_from_devices(slow_first)
        a = MoDNNPlanner().plan(model, cluster, fast_net)
        b = MoDNNPlanner().plan(model, slow_first, slow_net)
        assert a.assignment(0).decision.cuts == b.assignment(0).decision.cuts

    def test_mednn_prunes_weak_devices(self, model, cluster, network):
        plan = MeDNNPlanner(prune_threshold=0.05).plan(model, cluster, network)
        for assignment in plan.assignments:
            assert assignment.decision.rows_per_device()[3] == 0  # pi3 excluded

    def test_mednn_keeps_at_least_one_device(self, model, network):
        uniform = make_cluster([("nano", 100)] * 4)
        net = NetworkModel.constant_from_devices(uniform)
        plan = MeDNNPlanner(prune_threshold=0.9).plan(model, uniform, net)
        assert sum(plan.assignment(0).decision.rows_per_device()) > 0

    def test_mednn_invalid_threshold(self):
        with pytest.raises(ValueError):
            MeDNNPlanner(prune_threshold=1.0)

    def test_coedge_reacts_to_bandwidth(self, model):
        devices_fast = make_cluster([("nano", 300), ("nano", 300)])
        devices_skew = make_cluster([("nano", 300), ("nano", 20)])
        plan_fast = CoEdgePlanner().plan(
            model, devices_fast, NetworkModel.constant_from_devices(devices_fast)
        )
        plan_skew = CoEdgePlanner().plan(
            model, devices_skew, NetworkModel.constant_from_devices(devices_skew)
        )
        rows_fast = plan_fast.assignment(0).decision.rows_per_device()
        rows_skew = plan_skew.assignment(0).decision.rows_per_device()
        # With equal devices the split is even; a starved link shifts rows away.
        assert abs(rows_fast[0] - rows_fast[1]) <= 1
        assert rows_skew[0] > rows_skew[1]


class TestFusedBaselines:
    def test_deepthings_structure(self, model, cluster, network):
        planner = DeepThingsPlanner()
        plan = planner.plan(model, cluster, network)
        assert plan.num_volumes == 2
        first = plan.assignment(0).decision.rows_per_device()
        # Equal split of the fused block (within rounding).
        assert max(first) - min(first) <= 1
        # Remaining layers all on the gateway (most capable device).
        second = plan.assignment(1).decision.rows_per_device()
        assert second[0] == plan.assignment(1).decision.output_height

    def test_deepthings_fused_prefix_threshold(self, model):
        planner = DeepThingsPlanner(fuse_until_height_ratio=0.25)
        prefix = planner.fused_prefix_length(model)
        spatial = model.spatial_layers
        assert spatial[prefix - 1].out_h <= spatial[0].in_h * 0.25

    def test_deepthings_invalid_ratio(self):
        with pytest.raises(ValueError):
            DeepThingsPlanner(fuse_until_height_ratio=0.0)

    def test_deeperthings_equal_split_everywhere(self, model, cluster, network):
        plan = DeeperThingsPlanner().plan(model, cluster, network)
        assert plan.num_volumes == len(pool_boundaries(model)) - 1
        for assignment in plan.assignments:
            rows = assignment.decision.rows_per_device()
            assert max(rows) - min(rows) <= 1

    def test_aofl_splits_are_not_equal_on_heterogeneous_cluster(self, model, cluster, network):
        plan = AOFLPlanner().plan(model, cluster, network)
        rows = plan.assignment(0).decision.rows_per_device()
        assert rows[0] > rows[2]  # xavier gets more than nano

    def test_aofl_beats_equal_split_on_heterogeneous_cluster(
        self, model, cluster, network, evaluator
    ):
        aofl = evaluator.evaluate(AOFLPlanner().plan(model, cluster, network))
        deeper = evaluator.evaluate(DeeperThingsPlanner().plan(model, cluster, network))
        assert aofl.ips > deeper.ips

    def test_aofl_candidate_cap(self, model, cluster, network):
        plan = AOFLPlanner(max_candidate_boundaries=0).plan(model, cluster, network)
        assert plan.num_volumes == 1


class TestLinearLatencyModel:
    def test_predicts_lower_latency_for_faster_network(self, model, cluster):
        caps = capability_vector(model, cluster)
        fast = LinearLatencyModel(model, cluster, NetworkModel.constant_from_devices(cluster), caps)
        slow_devices = make_cluster([("xavier", 10), ("tx2", 10), ("nano", 10), ("pi3", 10)])
        slow = LinearLatencyModel(
            model, slow_devices, NetworkModel.constant_from_devices(slow_devices), caps
        )
        boundaries = pool_boundaries(model)
        decisions = [
            SplitDecision.equal(4, v.output_height) for v in model.partition(boundaries)
        ]
        assert fast.predict_plan_latency_ms(boundaries, decisions) < slow.predict_plan_latency_ms(
            boundaries, decisions
        )

    def test_linear_model_underestimates_true_latency(self, model, cluster, network, evaluator):
        """The linear model ignores launch overheads, tiles and I/O costs, so
        it is optimistic — precisely the gap DistrEdge exploits."""
        caps = capability_vector(model, cluster)
        linear = LinearLatencyModel(model, cluster, network, caps)
        boundaries = pool_boundaries(model)
        decisions = [
            SplitDecision.equal(4, v.output_height) for v in model.partition(boundaries)
        ]
        predicted = linear.predict_plan_latency_ms(boundaries, decisions)
        plan = DistributionPlan(model, cluster, boundaries, decisions)
        actual = evaluator.evaluate(plan).end_to_end_ms
        assert predicted < actual

    def test_capability_length_checked(self, model, cluster, network):
        with pytest.raises(ValueError):
            LinearLatencyModel(model, cluster, network, np.ones(2))
