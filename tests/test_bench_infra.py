"""Bench-gate bookkeeping and trend-check semantics (benchmarks/ helpers).

These helpers guard the ``BENCH_*.json`` artifact trail every CI bench job
relies on, so their skip/retention/regression rules get unit tests of their
own: enforced runs replace files wholesale, skipped runs only annotate,
``last_run_enforced`` tracks the *latest* run, and the trend check fails
only on enforced >25% speedup drops.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_module(name):
    spec = importlib.util.spec_from_file_location(name, _BENCHMARKS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_module("_gate")


@pytest.fixture(scope="module")
def trend():
    return _load_module("trend")


class TestRecordGateResult:
    def test_enforced_run_replaces_wholesale(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"stale": True, "gate_enforced": True}))
        out = gate.record_gate_result(path, {"speedup": 7.5}, enforced=True)
        data = json.loads(path.read_text())
        assert data == out
        assert data["speedup"] == 7.5
        assert data["gate_enforced"] is True
        assert data["last_run_enforced"] is True
        assert "stale" not in data

    def test_skip_retains_last_enforced_numbers(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        gate.record_gate_result(path, {"speedup": 7.5}, enforced=True)
        gate.record_gate_result(
            path, {}, enforced=False, skip_info={"reason": "2 cpus", "speedup": 1.1}
        )
        data = json.loads(path.read_text())
        # Enforced top-level numbers survive; the skip is an annotation.
        assert data["speedup"] == 7.5
        assert data["gate_enforced"] is True
        assert data["last_run_enforced"] is False
        assert data["skipped_run"] == {"reason": "2 cpus", "speedup": 1.1}

    def test_skip_with_no_enforced_history(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        gate.record_gate_result(path, {}, enforced=False, skip_info={"reason": "ci"})
        data = json.loads(path.read_text())
        assert data["gate_enforced"] is False
        assert data["last_run_enforced"] is False
        assert data["skipped_run"] == {"reason": "ci"}

    def test_enforced_run_flips_last_run_back(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        gate.record_gate_result(path, {"speedup": 7.5}, enforced=True)
        gate.record_gate_result(path, {}, enforced=False, skip_info={"reason": "x"})
        gate.record_gate_result(path, {"speedup": 8.0}, enforced=True)
        data = json.loads(path.read_text())
        assert data["speedup"] == 8.0
        assert data["last_run_enforced"] is True
        assert "skipped_run" not in data

    def test_skip_over_corrupt_file(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        gate.record_gate_result(path, {}, enforced=False, skip_info={"reason": "x"})
        data = json.loads(path.read_text())
        assert data["gate_enforced"] is False


class TestLastRunEnforcedCheck:
    def test_true_false_and_missing(self, gate, tmp_path):
        path = tmp_path / "BENCH_x.json"
        assert gate.last_run_enforced(path) is False  # missing
        gate.record_gate_result(path, {"speedup": 5.0}, enforced=True)
        assert gate.last_run_enforced(path) is True
        gate.record_gate_result(path, {}, enforced=False, skip_info={})
        assert gate.last_run_enforced(path) is False
        path.write_text("[1, 2]")  # JSON but not an object
        assert gate.last_run_enforced(path) is False

    def test_cli_prints_flag(self, gate, tmp_path, capsys):
        path = tmp_path / "BENCH_x.json"
        gate.record_gate_result(path, {"speedup": 5.0}, enforced=True)
        assert gate.main(["check", str(path)]) == 0
        assert capsys.readouterr().out.strip() == "true"
        assert gate.main(["check", str(tmp_path / "missing.json")]) == 0
        assert capsys.readouterr().out.strip() == "false"
        assert gate.main(["bogus"]) == 2


def _write(path: Path, rows) -> Path:
    path.write_text(json.dumps(rows))
    return path


class TestTrendCompare:
    def test_within_tolerance_passes(self, trend):
        regressions, _ = trend.compare(
            {"speedup": 6.0, "last_run_enforced": True}, {"speedup": 7.5}
        )
        assert regressions == []

    def test_regression_detected(self, trend):
        regressions, _ = trend.compare({"speedup": 5.0}, {"speedup": 7.5})
        assert len(regressions) == 1
        assert "speedup" in regressions[0]

    def test_improvement_never_flags(self, trend):
        regressions, _ = trend.compare({"speedup": 20.0}, {"speedup": 7.5})
        assert regressions == []

    def test_only_speedup_keys_gated(self, trend):
        regressions, _ = trend.compare(
            {"speedup": 7.5, "requests_per_s": 100.0, "speedup_vs_scalar": 2.0},
            {"speedup": 7.5, "requests_per_s": 9000.0, "speedup_vs_scalar": 10.0},
        )
        # requests_per_s collapsing is machine noise; speedup_vs_scalar is not.
        assert len(regressions) == 1
        assert "speedup_vs_scalar" in regressions[0]

    def test_one_sided_keys_are_notes(self, trend):
        regressions, notes = trend.compare(
            {"speedup_new": 3.0}, {"speedup_old": 9.0}
        )
        assert regressions == []
        assert any("speedup_old" in n for n in notes)
        assert any("speedup_new" in n for n in notes)


class TestTrendMain:
    def test_no_baseline_is_ok(self, trend, tmp_path):
        fresh = _write(tmp_path / "f.json", {"speedup": 5.0, "last_run_enforced": True})
        assert trend.main([str(fresh), "--baseline", str(tmp_path / "none.json")]) == 0

    def test_enforced_regression_fails(self, trend, tmp_path):
        fresh = _write(tmp_path / "f.json", {"speedup": 5.0, "last_run_enforced": True})
        base = _write(tmp_path / "b.json", {"speedup": 7.5})
        assert trend.main([str(fresh), "--baseline", str(base)]) == 1

    def test_skipped_gate_is_warn_only(self, trend, tmp_path):
        fresh = _write(tmp_path / "f.json", {"speedup": 5.0, "last_run_enforced": False})
        base = _write(tmp_path / "b.json", {"speedup": 7.5})
        assert trend.main([str(fresh), "--baseline", str(base)]) == 0

    def test_custom_tolerance(self, trend, tmp_path):
        fresh = _write(tmp_path / "f.json", {"speedup": 6.9, "last_run_enforced": True})
        base = _write(tmp_path / "b.json", {"speedup": 7.5})
        assert trend.main([str(fresh), "--baseline", str(base)]) == 0
        assert (
            trend.main(
                [str(fresh), "--baseline", str(base), "--max-regression", "0.05"]
            )
            == 1
        )

    def test_unreadable_fresh_is_usage_error(self, trend, tmp_path):
        base = _write(tmp_path / "b.json", {"speedup": 7.5})
        assert trend.main([str(tmp_path / "none.json"), "--baseline", str(base)]) == 2
