"""Shared fixtures for the test suite.

All planning-related fixtures use deliberately small models, clusters and
episode counts so the whole suite runs in a few minutes; the paper-scale
settings are exercised by the benchmark harness instead.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core.ddpg import DDPGConfig
from repro.core.osds import OSDSConfig
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.execution import ModelExecutor
from repro.runtime.evaluator import PlanEvaluator

# A global hypothesis profile keeping property tests quick and deadline-free
# (the NumPy conv reference can be slow on the first JIT-less call).
settings.register_profile("repro", max_examples=25, deadline=None)
settings.load_profile("repro")


# --------------------------------------------------------------------------- #
# Models
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def tiny_model():
    """A 4-spatial-layer CNN for numerical tests."""
    return model_zoo.tiny_cnn(32)


@pytest.fixture(scope="session")
def small_model():
    """The reduced VGG used for planner tests (8 conv + 4 pool layers)."""
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="session")
def vgg16_model():
    """Full VGG-16 layer configuration (used config-only, never executed)."""
    return model_zoo.vgg16()


@pytest.fixture(scope="session")
def tiny_executor(tiny_model):
    return ModelExecutor(tiny_model, seed=3)


@pytest.fixture(scope="session")
def small_executor(small_model):
    return ModelExecutor(small_model, seed=3)


# --------------------------------------------------------------------------- #
# Clusters / networks
# --------------------------------------------------------------------------- #
@pytest.fixture()
def hetero_cluster():
    """Two fast and two slow providers at a common bandwidth."""
    return make_cluster([("xavier", 200), ("xavier", 200), ("nano", 200), ("nano", 200)])


@pytest.fixture()
def mixed_cluster():
    """One provider of each type with heterogeneous bandwidths."""
    return make_cluster([("xavier", 300), ("tx2", 200), ("nano", 100), ("pi3", 50)])


@pytest.fixture()
def duo_cluster():
    """Two providers (keeps planner tests fast)."""
    return make_cluster([("xavier", 200), ("nano", 200)])


@pytest.fixture()
def constant_network(hetero_cluster):
    return NetworkModel.constant_from_devices(hetero_cluster)


@pytest.fixture()
def duo_network(duo_cluster):
    return NetworkModel.constant_from_devices(duo_cluster)


@pytest.fixture()
def evaluator(hetero_cluster, constant_network):
    return PlanEvaluator(hetero_cluster, constant_network)


@pytest.fixture()
def duo_evaluator(duo_cluster, duo_network):
    return PlanEvaluator(duo_cluster, duo_network)


# --------------------------------------------------------------------------- #
# Fast algorithm configurations
# --------------------------------------------------------------------------- #
@pytest.fixture()
def fast_ddpg_config():
    """Small networks so each update costs microseconds."""
    return DDPGConfig(actor_hidden=(32, 32), critic_hidden=(32, 32), warmup_transitions=16)


@pytest.fixture()
def fast_osds_config(fast_ddpg_config):
    return OSDSConfig(max_episodes=8, ddpg=fast_ddpg_config, seed=0)
