"""Tests for the star-topology network model."""

from __future__ import annotations

import pytest

from repro.devices.specs import make_cluster
from repro.network.topology import REQUESTER, NetworkModel


@pytest.fixture()
def devices():
    return make_cluster([("xavier", 300), ("nano", 50), ("tx2", 100)])


class TestNetworkModel:
    def test_constant_from_devices_uses_nominal(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        assert net.nominal_mbps(0) == 300
        assert net.nominal_mbps(1) == 50
        assert net.num_providers == 3

    def test_requester_link_default(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        assert net.nominal_mbps(REQUESTER) == 300

    def test_pair_rate_is_min_of_links(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        assert net.throughput_mbps(0, 1) == 50
        assert net.throughput_mbps(REQUESTER, 2) == 100

    def test_same_endpoint_transfer_is_free(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        assert net.transfer_latency_ms(1, 1, 1e6) == 0.0

    def test_same_endpoint_throughput_rejected(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        with pytest.raises(ValueError):
            net.throughput_mbps(2, 2)

    def test_zero_bytes_free(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        assert net.transfer_latency_ms(0, 1, 0) == 0.0

    def test_transfer_latency_slower_on_slow_link(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        fast = net.transfer_latency_ms(REQUESTER, 0, 1e6)
        slow = net.transfer_latency_ms(REQUESTER, 1, 1e6)
        assert slow > fast

    def test_unknown_endpoint(self, devices):
        net = NetworkModel.constant_from_devices(devices)
        with pytest.raises(IndexError):
            net.link_of(7)

    def test_from_devices_wifi_traces_fluctuate(self, devices):
        net = NetworkModel.from_devices(devices, kind="wifi", seed=0)
        r0 = net.throughput_mbps(REQUESTER, 0, 0.0)
        r1 = net.throughput_mbps(REQUESTER, 0, 500.0)
        assert r0 > 0 and r1 > 0

    def test_from_devices_reproducible(self, devices):
        a = NetworkModel.from_devices(devices, kind="dynamic", seed=3)
        b = NetworkModel.from_devices(devices, kind="dynamic", seed=3)
        assert a.throughput_mbps(0, 1, 100.0) == b.throughput_mbps(0, 1, 100.0)

    def test_provider_count_mismatch_detected_by_evaluator(self, devices):
        from repro.runtime.evaluator import PlanEvaluator

        net = NetworkModel.constant_from_devices(devices[:2])
        with pytest.raises(ValueError):
            PlanEvaluator(devices, net)
