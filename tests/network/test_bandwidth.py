"""Tests for bandwidth traces (Fig. 4 / Fig. 12 conditions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.bandwidth import ConstantTrace, DynamicTrace, WiFiTrace, make_trace


class TestConstantTrace:
    def test_constant_everywhere(self):
        trace = ConstantTrace(200.0)
        assert trace.throughput_mbps(0) == 200.0
        assert trace.throughput_mbps(1e6) == 200.0
        assert trace.mean_mbps() == pytest.approx(200.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantTrace(0.0)


class TestWiFiTrace:
    def test_stays_close_to_nominal(self):
        trace = WiFiTrace(mbps=200.0, seed=0)
        samples = trace.sample(0, 3600, 10.0)[:, 1]
        assert abs(samples.mean() - 200.0) / 200.0 < 0.05
        assert samples.min() >= 100.0
        assert samples.max() <= 230.0

    def test_fluctuates(self):
        trace = WiFiTrace(mbps=100.0, seed=1)
        samples = trace.sample(0, 600, 10.0)[:, 1]
        assert samples.std() > 0.0

    def test_deterministic_per_seed(self):
        a = WiFiTrace(mbps=50.0, seed=7).sample(0, 600, 10.0)
        b = WiFiTrace(mbps=50.0, seed=7).sample(0, 600, 10.0)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = WiFiTrace(mbps=50.0, seed=1).sample(0, 600, 10.0)[:, 1]
        b = WiFiTrace(mbps=50.0, seed=2).sample(0, 600, 10.0)[:, 1]
        assert not np.array_equal(a, b)

    def test_clamps_time_outside_duration(self):
        trace = WiFiTrace(mbps=50.0, duration_seconds=100.0, seed=0)
        assert trace.throughput_mbps(1e9) > 0

    @given(mbps=st.sampled_from([50.0, 100.0, 200.0, 300.0]), t=st.floats(0, 3600))
    def test_always_positive(self, mbps, t):
        trace = WiFiTrace(mbps=mbps, seed=3)
        assert trace.throughput_mbps(t) > 0


class TestDynamicTrace:
    def test_bounded_between_low_and_high(self):
        trace = DynamicTrace(low_mbps=40, high_mbps=100, seed=0)
        samples = trace.sample(0, 3600, 30.0)[:, 1]
        assert samples.min() >= 40 - 1e-9
        assert samples.max() <= 100 + 1e-9

    def test_high_variability(self):
        """The dynamic traces swing far more than the shaped WiFi traces."""
        dynamic = DynamicTrace(seed=0).sample(0, 3600, 60.0)[:, 1]
        wifi = WiFiTrace(mbps=70.0, seed=0).sample(0, 3600, 60.0)[:, 1]
        assert dynamic.std() > 3 * wifi.std()

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DynamicTrace(low_mbps=100, high_mbps=50)

    def test_nominal_is_mean(self):
        trace = DynamicTrace(seed=4)
        assert 40 <= trace.nominal_mbps <= 100


class TestMakeTrace:
    def test_kinds(self):
        assert isinstance(make_trace(100, "constant"), ConstantTrace)
        assert isinstance(make_trace(100, "wifi"), WiFiTrace)
        assert isinstance(make_trace(70, "dynamic"), DynamicTrace)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_trace(100, "satellite")

    def test_dynamic_band_centred_on_mbps(self):
        trace = make_trace(70, "dynamic", seed=0)
        assert trace.low_mbps == pytest.approx(40.0)
        assert trace.high_mbps == pytest.approx(100.0)
