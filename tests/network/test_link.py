"""Tests for the transmission-latency model and links."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.bandwidth import ConstantTrace
from repro.network.link import Link, TransmissionModel


class TestTransmissionModel:
    def test_zero_bytes_is_free(self):
        model = TransmissionModel()
        assert model.transfer_latency_ms(0, 100) == 0.0
        assert model.io_overhead_ms(0) == 0.0

    def test_includes_io_overhead(self):
        """Latency exceeds the pure bytes/throughput air time (paper's point
        against CoEdge/AOFL-style transmission models)."""
        model = TransmissionModel()
        n_bytes = 100_000
        air = model.air_time_ms(n_bytes, 100)
        total = model.transfer_latency_ms(n_bytes, 100)
        assert total > air
        assert total == pytest.approx(air + model.io_overhead_ms(n_bytes))

    def test_air_time_formula(self):
        model = TransmissionModel()
        # 1 Mbit at 100 Mbps = 10 ms.
        assert model.air_time_ms(125_000, 100) == pytest.approx(10.0)

    def test_faster_link_is_faster(self):
        model = TransmissionModel()
        assert model.transfer_latency_ms(1e6, 300) < model.transfer_latency_ms(1e6, 50)

    def test_invalid_throughput(self):
        with pytest.raises(ValueError):
            TransmissionModel().air_time_ms(10, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TransmissionModel(io_fixed_ms=-1)
        with pytest.raises(ValueError):
            TransmissionModel(io_bytes_per_second=0)

    @given(n_bytes=st.integers(1, 10_000_000), mbps=st.floats(1, 1000))
    def test_latency_positive_and_monotone_in_bytes(self, n_bytes, mbps):
        model = TransmissionModel()
        lat = model.transfer_latency_ms(n_bytes, mbps)
        assert lat > 0
        assert model.transfer_latency_ms(n_bytes * 2, mbps) > lat


class TestLink:
    def test_constant_constructor(self):
        link = Link.constant(200.0)
        assert link.throughput_mbps(123.0) == 200.0

    def test_transfer_latency_uses_trace(self):
        link = Link(trace=ConstantTrace(100.0))
        slow = Link(trace=ConstantTrace(10.0))
        assert link.transfer_latency_ms(1e6) < slow.transfer_latency_ms(1e6)
