"""End-to-end integration tests tying the whole pipeline together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BASELINE_REGISTRY,
    DistrEdge,
    DistrEdgeConfig,
    DistributionPlan,
    NetworkModel,
    PlanEvaluator,
    StreamingSimulator,
    make_cluster,
    model_zoo,
)
from repro.core.ddpg import DDPGConfig
from repro.core.osds import OSDSConfig
from repro.nn.execution import ModelExecutor, SplitExecutor


@pytest.fixture(scope="module")
def deployment():
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("xavier", 150), ("nano", 150), ("nano", 150)])
    network = NetworkModel.constant_from_devices(devices)
    evaluator = PlanEvaluator(devices, network)
    return model, devices, network, evaluator


@pytest.fixture(scope="module")
def distredge_plan(deployment):
    model, devices, network, _ = deployment
    config = DistrEdgeConfig(
        num_random_splits=8,
        osds=OSDSConfig(
            max_episodes=25,
            ddpg=DDPGConfig(actor_hidden=(32, 32), critic_hidden=(32, 32), warmup_transitions=16),
            seed=0,
        ),
        seed=0,
    )
    return DistrEdge(config).plan(model, devices, network)


class TestEndToEnd:
    def test_distredge_matches_or_beats_every_baseline(self, deployment, distredge_plan):
        model, devices, network, evaluator = deployment
        distredge_ips = evaluator.evaluate(distredge_plan).ips
        for name, cls in BASELINE_REGISTRY.items():
            baseline_ips = evaluator.evaluate(cls().plan(model, devices, network)).ips
            assert distredge_ips >= baseline_ips * 0.98, (
                f"DistrEdge ({distredge_ips:.2f} IPS) lost to {name} ({baseline_ips:.2f} IPS)"
            )

    def test_distredge_plan_is_numerically_lossless(self, deployment, distredge_plan):
        """The plan produced by the full pipeline executes split-by-split to
        the same tensor as single-device execution."""
        model, *_ = deployment
        executor = ModelExecutor(model, seed=11)
        splitter = SplitExecutor(executor)
        x = executor.random_input()
        whole = executor.run(x, upto=model.num_spatial_layers)
        merged = splitter.run_plan_volumes(
            distredge_plan.volumes, distredge_plan.decisions, x
        )
        np.testing.assert_allclose(whole, merged, rtol=1e-4, atol=1e-5)

    def test_streaming_ips_consistent_with_plan_latency(self, deployment, distredge_plan):
        _, _, _, evaluator = deployment
        stream = StreamingSimulator(evaluator).run(distredge_plan, num_images=10)
        single = evaluator.evaluate(distredge_plan)
        assert stream.ips == pytest.approx(single.ips, rel=1e-3)

    def test_plan_total_macs_bounded(self, deployment, distredge_plan):
        model, *_ = deployment
        assert distredge_plan.total_macs() >= model.total_macs
        assert distredge_plan.recomputation_overhead() < 3.0


class TestPublicAPI:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_offload_plan_from_public_api(self):
        model = model_zoo.tiny_cnn()
        devices = make_cluster([("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        plan = DistributionPlan.single_device(model, devices, 0)
        assert PlanEvaluator(devices, network).ips(plan) > 0
