"""Cross-module property-based invariants.

These tests tie several subsystems together under randomly generated
distribution plans: whatever split decisions a planner could emit, the
runtime's accounting must stay physically consistent (latency bounds, byte
conservation, monotonicity in bandwidth) and plans must survive a
serialisation round-trip.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision, split_volume
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan, redistribution_bytes
from repro.runtime.serialization import plan_from_dict, plan_to_dict
from repro.utils.units import FP16_BYTES

MODEL = model_zoo.small_vgg(64)
BOUNDARIES = [0, 4, 8, MODEL.num_spatial_layers]
VOLUMES = MODEL.partition(BOUNDARIES)


def plan_from_fractions(devices, fraction_rows):
    decisions = []
    for volume, fractions in zip(VOLUMES, fraction_rows):
        decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
    return DistributionPlan(MODEL, devices, BOUNDARIES, decisions, method="property")


fractions_strategy = st.lists(
    st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3).filter(lambda f: sum(f) > 0),
    min_size=len(VOLUMES),
    max_size=len(VOLUMES),
)


class TestSchedulePhysicality:
    @given(fraction_rows=fractions_strategy)
    @settings(max_examples=20)
    def test_end_to_end_at_least_critical_compute(self, fraction_rows):
        """End-to-end latency can never undercut any device's own busy time."""
        devices = make_cluster([("xavier", 150), ("nano", 150), ("nano", 150)])
        network = NetworkModel.constant_from_devices(devices)
        evaluator = PlanEvaluator(devices, network)
        plan = plan_from_fractions(devices, fraction_rows)
        result = evaluator.evaluate(plan)
        assert result.end_to_end_ms >= result.per_device_compute_ms.max() - 1e-6
        assert result.end_to_end_ms >= result.scatter_end_ms - 1e-6
        assert np.all(result.per_device_compute_ms >= 0)

    @given(fraction_rows=fractions_strategy)
    @settings(max_examples=15)
    def test_lower_bandwidth_never_helps(self, fraction_rows):
        fast_devices = make_cluster([("nano", 200)] * 3)
        slow_devices = make_cluster([("nano", 40)] * 3)
        fast = PlanEvaluator(fast_devices, NetworkModel.constant_from_devices(fast_devices))
        slow = PlanEvaluator(slow_devices, NetworkModel.constant_from_devices(slow_devices))
        fast_ms = fast.evaluate(plan_from_fractions(fast_devices, fraction_rows)).end_to_end_ms
        slow_ms = slow.evaluate(plan_from_fractions(slow_devices, fraction_rows)).end_to_end_ms
        assert slow_ms >= fast_ms - 1e-6

    @given(fraction_rows=fractions_strategy)
    @settings(max_examples=15)
    def test_accumulated_latencies_monotone_per_volume(self, fraction_rows):
        devices = make_cluster([("tx2", 100), ("nano", 100), ("nano", 100)])
        network = NetworkModel.constant_from_devices(devices)
        plan = plan_from_fractions(devices, fraction_rows)
        result = PlanEvaluator(devices, network).evaluate(plan)
        acc = result.accumulated_latencies
        for earlier, later in zip(acc, acc[1:]):
            assert np.all(later >= earlier - 1e-6)


class TestByteConservation:
    @given(
        prev_fracs=st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3),
        cur_fracs=st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3),
    )
    @settings(max_examples=25)
    def test_redistribution_never_exceeds_full_tensor(self, prev_fracs, cur_fracs):
        if sum(prev_fracs) == 0:
            prev_fracs = [1.0, 1.0, 1.0]
        if sum(cur_fracs) == 0:
            cur_fracs = [1.0, 1.0, 1.0]
        volume_a, volume_b = VOLUMES[0], VOLUMES[1]
        prev = split_volume(volume_a, SplitDecision.from_fractions(prev_fracs, volume_a.output_height))
        cur = split_volume(volume_b, SplitDecision.from_fractions(cur_fracs, volume_b.output_height))
        row_bytes = volume_b.first.in_w * volume_b.first.in_c * FP16_BYTES
        transfers = redistribution_bytes(prev, cur, row_bytes)
        tensor_bytes = volume_b.first.in_h * row_bytes
        # Each destination receives at most one copy of the tensor's rows it
        # needs; total traffic is bounded by (#receivers) x tensor size.
        assert sum(transfers.values()) <= tensor_bytes * len(cur)
        for (src, dst), n_bytes in transfers.items():
            assert src != dst
            assert 0 < n_bytes <= tensor_bytes

    @given(fraction_rows=fractions_strategy)
    @settings(max_examples=15)
    def test_total_transmission_counts_all_boundaries(self, fraction_rows):
        devices = make_cluster([("nano", 100)] * 3)
        plan = plan_from_fractions(devices, fraction_rows)
        total = plan.total_transmission_bytes()
        # At minimum the requester ships the input once and receives a result.
        assert total >= MODEL.input_bytes * 0  # non-negative by construction
        assert total > 0


class TestSerializationRoundTrip:
    @given(fraction_rows=fractions_strategy)
    @settings(max_examples=15)
    def test_any_plan_roundtrips(self, fraction_rows):
        devices = make_cluster([("xavier", 200), ("nano", 100), ("pi3", 50)])
        plan = plan_from_fractions(devices, fraction_rows)
        restored = plan_from_dict(plan_to_dict(plan), model=MODEL)
        assert restored.boundaries == plan.boundaries
        assert [d.cuts for d in restored.decisions] == [d.cuts for d in plan.decisions]
        assert [d.bandwidth_mbps for d in restored.devices] == [
            d.bandwidth_mbps for d in plan.devices
        ]
