"""Tests for the DDPG agent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ddpg import DDPGAgent, DDPGConfig


@pytest.fixture()
def agent(fast_ddpg_config):
    return DDPGAgent(state_dim=4, action_dim=2, config=fast_ddpg_config, seed=0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = DDPGConfig()
        assert cfg.actor_lr == pytest.approx(1e-4)
        assert cfg.critic_lr == pytest.approx(1e-3)
        assert cfg.gamma == pytest.approx(0.99)
        assert cfg.batch_size == 64
        assert cfg.actor_hidden == (400, 200, 100)
        assert cfg.critic_hidden == (400, 200, 100, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            DDPGConfig(gamma=0.0)
        with pytest.raises(ValueError):
            DDPGConfig(batch_size=0)
        with pytest.raises(ValueError):
            DDPGConfig(tau=0.0)
        with pytest.raises(ValueError):
            DDPGConfig(noise_sigma=-1)


class TestAgent:
    def test_action_bounds(self, agent):
        state = np.random.default_rng(0).normal(size=4).astype(np.float32)
        for noise in (False, True):
            action = agent.act(state, noise=noise)
            assert action.shape == (2,)
            assert np.all(np.abs(action) <= 1.0)

    def test_deterministic_without_noise(self, agent):
        state = np.ones(4, dtype=np.float32)
        np.testing.assert_array_equal(agent.act(state), agent.act(state))

    def test_random_action_in_range(self, agent):
        action = agent.random_action()
        assert action.shape == (2,)
        assert np.all(np.abs(action) <= 1.0)

    def test_act_batch_matches_single_state(self, agent):
        states = np.random.default_rng(1).normal(size=(3, 4)).astype(np.float32)
        batched = agent.act_batch(states)
        assert batched.shape == (3, 2)
        assert np.all(np.abs(batched) <= 1.0)
        # A batch of one is exactly the deterministic act() path.
        np.testing.assert_array_equal(agent.act_batch(states[:1])[0], agent.act(states[0]))

    def test_act_batch_applies_predrawn_noise(self, agent):
        states = np.zeros((2, 4), dtype=np.float32)
        noise = np.array([[0.0, 0.0], [5.0, -5.0]])
        actions = agent.act_batch(states, noise=noise)
        np.testing.assert_array_equal(actions[1], np.array([1.0, -1.0], dtype=np.float32))

    def test_draw_noise_skips_rng_when_sigma_zero(self, fast_ddpg_config):
        from dataclasses import replace

        quiet = DDPGAgent(4, 2, replace(fast_ddpg_config, noise_sigma=0.0), seed=5)
        before = quiet._rng.bit_generator.state["state"]["state"]
        noise = quiet.draw_noise()
        np.testing.assert_array_equal(noise, np.zeros(2))
        # Same gate as act(): sigma == 0 must not consume RNG state.
        assert quiet._rng.bit_generator.state["state"]["state"] == before

    def test_update_requires_warmup(self, agent):
        assert agent.update() is None

    def test_update_runs_after_warmup(self, agent, fast_ddpg_config):
        rng = np.random.default_rng(0)
        for _ in range(fast_ddpg_config.warmup_transitions + 4):
            s = rng.normal(size=4)
            a = rng.uniform(-1, 1, size=2)
            agent.remember(s, a, rng.random(), rng.normal(size=4), False)
        out = agent.update()
        assert out is not None
        critic_loss, actor_objective = out
        assert critic_loss >= 0.0
        assert np.isfinite(actor_objective)
        assert agent.updates == 1

    def test_learning_improves_on_simple_bandit(self):
        """One-step problem: reward = -|a - 0.5|; the policy should move
        towards 0.5 after training."""
        config = DDPGConfig(
            actor_hidden=(32, 32),
            critic_hidden=(32, 32),
            actor_lr=1e-3,
            critic_lr=3e-3,
            batch_size=32,
            warmup_transitions=32,
        )
        agent = DDPGAgent(state_dim=2, action_dim=1, config=config, seed=1)
        rng = np.random.default_rng(0)
        state = np.zeros(2, dtype=np.float32)
        initial = float(agent.act(state)[0])
        for _ in range(800):
            action = np.clip(agent.act(state, noise=True) + rng.normal(0, 0.3, 1), -1, 1)
            reward = -abs(float(action[0]) - 0.5)
            agent.remember(state, action, reward, state, True)
            agent.update()
        final = float(agent.act(state)[0])
        assert abs(final - 0.5) < abs(initial - 0.5) or abs(final - 0.5) < 0.2
        assert abs(final - 0.5) < 0.4

    def test_snapshot_restore_roundtrip(self, agent):
        state = np.ones(4, dtype=np.float32)
        snapshot = agent.snapshot()
        before = agent.act(state).copy()
        # Perturb the actor.
        agent.actor.weights[0] += 1.0
        assert not np.allclose(agent.act(state), before)
        agent.restore(snapshot)
        np.testing.assert_allclose(agent.act(state), before, atol=1e-6)

    def test_invalid_dims(self, fast_ddpg_config):
        with pytest.raises(ValueError):
            DDPGAgent(0, 2, config=fast_ddpg_config)
