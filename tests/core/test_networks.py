"""Tests for the NumPy MLP / Adam toolkit (gradient correctness included)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.networks import MLP, Adam


def numerical_gradient(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestMLPForward:
    def test_output_shape(self):
        net = MLP([4, 8, 3], seed=0)
        out = net.forward(np.zeros((5, 4), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_single_vector_promoted(self):
        net = MLP([4, 8, 2], seed=0)
        assert net.forward(np.zeros(4, dtype=np.float32)).shape == (1, 2)

    def test_tanh_output_bounded(self):
        net = MLP([3, 16, 4], output_activation="tanh", seed=1)
        out = net.forward(np.random.default_rng(0).normal(size=(10, 3)) * 100)
        assert np.all(np.abs(out) <= 1.0)

    def test_deterministic_init(self):
        a = MLP([4, 8, 2], seed=5).forward(np.ones((1, 4)))
        b = MLP([4, 8, 2], seed=5).forward(np.ones((1, 4)))
        np.testing.assert_array_equal(a, b)

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 2], output_activation="relu")


class TestMLPBackward:
    def test_weight_gradients_match_numerical(self):
        rng = np.random.default_rng(0)
        net = MLP([3, 6, 2], seed=2)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        target = rng.normal(size=(4, 2)).astype(np.float32)

        def loss():
            out = net.forward(x)
            return float(np.sum((out - target) ** 2))

        out = net.forward(x, cache=True)
        grads, _ = net.backward(2.0 * (out - target))
        params = net.parameters()
        for p, g in zip(params, grads):
            numeric = numerical_gradient(loss, p)
            np.testing.assert_allclose(g, numeric, rtol=1e-2, atol=1e-2)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        net = MLP([3, 5, 1], seed=3)
        x = rng.normal(size=(1, 3)).astype(np.float32)

        def value():
            return float(net.forward(x).sum())

        net.forward(x, cache=True)
        _, grad_in = net.backward(np.ones((1, 1), dtype=np.float32))
        numeric = numerical_gradient(value, x)
        np.testing.assert_allclose(grad_in, numeric, rtol=1e-2, atol=1e-2)

    def test_backward_without_forward_raises(self):
        net = MLP([2, 3, 1], seed=0)
        with pytest.raises(RuntimeError):
            net.backward(np.ones((1, 1)))


class TestParameterManagement:
    def test_copy_from_matches_outputs(self):
        a = MLP([3, 8, 2], seed=0)
        b = MLP([3, 8, 2], seed=99)
        b.copy_from(a)
        x = np.ones((2, 3), dtype=np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_soft_update_moves_towards_source(self):
        a = MLP([3, 4, 1], seed=0)
        b = MLP([3, 4, 1], seed=1)
        before = np.abs(a.weights[0] - b.weights[0]).sum()
        b.soft_update_from(a, tau=0.5)
        after = np.abs(a.weights[0] - b.weights[0]).sum()
        assert after < before

    def test_soft_update_tau_one_copies(self):
        a = MLP([3, 4, 1], seed=0)
        b = MLP([3, 4, 1], seed=1)
        b.soft_update_from(a, tau=1.0)
        np.testing.assert_allclose(a.weights[0], b.weights[0], rtol=1e-6)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            MLP([2, 2], seed=0).soft_update_from(MLP([2, 2], seed=1), tau=2.0)

    def test_set_parameters_shape_check(self):
        net = MLP([3, 4, 1], seed=0)
        with pytest.raises(ValueError):
            net.set_parameters([np.zeros((2, 2))])


class TestAdam:
    def test_minimises_quadratic(self):
        params = [np.array([5.0, -3.0])]
        adam = Adam(learning_rate=0.1)
        for _ in range(500):
            grads = [2 * params[0]]
            adam.step(params, grads)
        assert np.all(np.abs(params[0]) < 0.05)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Adam().step([np.zeros(2)], [])

    def test_step_changes_parameters(self):
        params = [np.ones(3)]
        Adam(learning_rate=0.01).step(params, [np.ones(3)])
        assert not np.allclose(params[0], 1.0)
