"""Tests for the layer-volume splitting MDP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import SplitMDP, map_action_to_cuts
from repro.runtime.plan import DistributionPlan


@pytest.fixture()
def env(small_model, duo_cluster, duo_evaluator):
    boundaries = [0, 4, 8, small_model.num_spatial_layers]
    return SplitMDP(small_model, boundaries, duo_cluster, duo_evaluator)


class TestActionMapping:
    def test_extremes_map_to_bounds(self):
        assert map_action_to_cuts(np.array([-1.0]), 20) == (0,)
        assert map_action_to_cuts(np.array([1.0]), 20) == (20,)

    def test_midpoint(self):
        assert map_action_to_cuts(np.array([0.0]), 20) == (10,)

    def test_sorted_before_mapping(self):
        cuts = map_action_to_cuts(np.array([0.5, -0.5, 0.0]), 100)
        assert cuts == (25, 50, 75)

    def test_out_of_range_clipped(self):
        assert map_action_to_cuts(np.array([5.0, -5.0]), 10) == (0, 10)


class TestSplitMDP:
    def test_dimensions(self, env, duo_cluster):
        assert env.action_dim == len(duo_cluster) - 1
        assert env.state_dim == len(duo_cluster) + 4
        assert env.num_volumes == 3

    def test_reset_observation_shape_and_normalisation(self, env):
        obs = env.reset()
        assert obs.shape == (env.state_dim,)
        assert np.all(np.isfinite(obs))
        # Initial accumulated latencies are zero.
        assert np.allclose(obs[: env.num_devices], 0.0)

    def test_step_before_reset_raises(self, small_model, duo_cluster, duo_evaluator):
        env = SplitMDP(small_model, [0, small_model.num_spatial_layers], duo_cluster, duo_evaluator)
        with pytest.raises(RuntimeError):
            env.step(np.zeros(env.action_dim))

    def test_episode_runs_to_terminal(self, env):
        env.reset()
        total_reward = 0.0
        for step in range(env.num_volumes):
            obs, reward, done, info = env.step(np.zeros(env.action_dim))
            total_reward += reward
            if step < env.num_volumes - 1:
                assert not done
                assert reward == 0.0
            else:
                assert done
                assert reward > 0.0
                assert "end_to_end_ms" in info and "plan" in info
                assert isinstance(info["plan"], DistributionPlan)
        # Terminal reward equals IPS of the produced plan.
        assert total_reward == pytest.approx(1000.0 / info["end_to_end_ms"])

    def test_step_after_done_raises(self, env):
        env.reset()
        for _ in range(env.num_volumes):
            env.step(np.zeros(env.action_dim))
        with pytest.raises(RuntimeError):
            env.step(np.zeros(env.action_dim))

    def test_accumulated_latencies_in_state(self, env):
        env.reset()
        env.step(np.zeros(env.action_dim))
        obs = env.observation()
        assert np.any(obs.accumulated_ms > 0)

    def test_rollout_matches_plan_evaluation(self, env, duo_evaluator):
        actions = [np.array([0.0]) for _ in range(env.num_volumes)]
        latency, plan = env.rollout(actions)
        direct = duo_evaluator.evaluate(plan).end_to_end_ms
        assert latency == pytest.approx(direct, rel=1e-9)

    def test_rollout_wrong_length(self, env):
        with pytest.raises(ValueError):
            env.rollout([np.array([0.0])])

    def test_all_to_one_device_matches_offload(self, env, small_model, duo_cluster, duo_evaluator):
        """Pushing every cut to +1 gives the single-device (offload) corner."""
        actions = [np.array([1.0]) for _ in range(env.num_volumes)]
        latency, plan = env.rollout(actions)
        offload = duo_evaluator.evaluate(
            DistributionPlan.single_device(small_model, duo_cluster, 0)
        ).end_to_end_ms
        assert latency == pytest.approx(offload, rel=0.02)

    def test_latency_scale_is_best_offload(self, env, small_model, duo_cluster, duo_evaluator):
        best = min(
            duo_evaluator.evaluate(
                DistributionPlan.single_device(small_model, duo_cluster, i)
            ).end_to_end_ms
            for i in range(len(duo_cluster))
        )
        assert env.latency_scale_ms == pytest.approx(best)


class TestBatchActionMapping:
    def test_rows_match_scalar_mapping(self):
        from repro.core.mdp import map_action_to_cuts_batch

        rng = np.random.default_rng(5)
        raw = rng.uniform(-1.5, 1.5, size=(32, 3))
        batch = map_action_to_cuts_batch(raw, 57)
        for row, mapped in zip(raw, batch):
            assert tuple(int(c) for c in mapped) == map_action_to_cuts(row, 57)

    def test_dtype_and_bounds(self):
        from repro.core.mdp import map_action_to_cuts_batch

        cuts = map_action_to_cuts_batch(np.array([[5.0, -5.0], [0.0, 0.0]]), 10)
        assert cuts.min() >= 0 and cuts.max() <= 10
        assert np.issubdtype(cuts.dtype, np.integer)


class TestBatchSplitMDP:
    """Lockstep episode stepping must be bit-identical to the scalar env."""

    def _batch_env_pair(self, small_model, duo_cluster, duo_network):
        from repro.core.mdp import BatchSplitMDP
        from repro.runtime.batch import BatchPlanEvaluator

        boundaries = [0, 4, 8, small_model.num_spatial_layers]
        evaluator = BatchPlanEvaluator(duo_cluster, duo_network)
        env = SplitMDP(small_model, boundaries, duo_cluster, evaluator)
        return env, BatchSplitMDP(env, 6)

    def test_supports_requires_vectorised_oracle(self, env):
        from repro.core.mdp import BatchSplitMDP

        # The plain scalar PlanEvaluator cannot step episode batches.
        assert not BatchSplitMDP.supports(env)
        with pytest.raises(ValueError):
            BatchSplitMDP(env, 4)

    def test_lockstep_bit_identical_to_scalar(self, small_model, duo_cluster, duo_network):
        env, batch_env = self._batch_env_pair(small_model, duo_cluster, duo_network)
        rng = np.random.default_rng(11)
        actions = rng.uniform(-1, 1, size=(env.num_volumes, 6, env.action_dim)).astype(np.float32)

        obs = batch_env.reset()
        batch_obs = [obs]
        batch_rewards = []
        terminal_infos = None
        for step in range(env.num_volumes):
            obs, rewards, done, infos = batch_env.step(actions[step])
            batch_obs.append(obs)
            batch_rewards.append(rewards)
            if done:
                terminal_infos = infos
        assert terminal_infos is not None

        for e in range(6):
            scalar_obs = [env.reset()]
            scalar_rewards = []
            scalar_info = None
            for step in range(env.num_volumes):
                next_obs, reward, done, info = env.step(actions[step, e])
                scalar_obs.append(next_obs)
                scalar_rewards.append(reward)
                if done:
                    scalar_info = info
            for step in range(env.num_volumes + 1):
                assert np.array_equal(batch_obs[step][e], scalar_obs[step])
            for step in range(env.num_volumes):
                assert float(batch_rewards[step][e]) == scalar_rewards[step]
            assert terminal_infos[e]["end_to_end_ms"] == scalar_info["end_to_end_ms"]
            assert [d.cuts for d in terminal_infos[e]["decisions"]] == [
                d.cuts for d in scalar_info["decisions"]
            ]
            result = terminal_infos[e]["result"]
            assert result.end_to_end_ms == scalar_info["result"].end_to_end_ms
            assert result.head_device == scalar_info["result"].head_device

    def test_head_placement_matches_plan_default(self, small_model, duo_cluster, duo_network):
        env, batch_env = self._batch_env_pair(small_model, duo_cluster, duo_network)
        rng = np.random.default_rng(3)
        batch_env.reset()
        infos = None
        for step in range(env.num_volumes):
            actions = rng.uniform(-1, 1, size=(6, env.action_dim)).astype(np.float32)
            _, _, done, infos = batch_env.step(actions)
        assert done
        for info in infos:
            plan = env.build_plan(info["decisions"])
            assert info["result"].head_device == plan.head_device

    def test_step_after_done_raises(self, small_model, duo_cluster, duo_network):
        env, batch_env = self._batch_env_pair(small_model, duo_cluster, duo_network)
        batch_env.reset()
        zero = np.zeros((6, env.action_dim), dtype=np.float32)
        for _ in range(env.num_volumes):
            batch_env.step(zero)
        with pytest.raises(RuntimeError):
            batch_env.step(zero)

    def test_step_before_reset_raises(self, small_model, duo_cluster, duo_network):
        env, batch_env = self._batch_env_pair(small_model, duo_cluster, duo_network)
        with pytest.raises(RuntimeError):
            batch_env.step(np.zeros((6, env.action_dim), dtype=np.float32))
