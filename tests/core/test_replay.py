"""Tests for the replay buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.replay import ReplayBuffer, Transition


def make_transition(i: int) -> Transition:
    return Transition(
        state=np.full(3, float(i), dtype=np.float32),
        action=np.full(2, float(i), dtype=np.float32),
        reward=float(i),
        next_state=np.full(3, float(i + 1), dtype=np.float32),
        done=i % 2 == 0,
    )


class TestReplayBuffer:
    def test_add_and_len(self):
        buffer = ReplayBuffer(capacity=10)
        for i in range(4):
            buffer.add(make_transition(i))
        assert len(buffer) == 4

    def test_capacity_wraps_around(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(7):
            buffer.add(make_transition(i))
        assert len(buffer) == 3
        states, _, rewards, _, _ = buffer.sample(3)
        assert rewards.max() >= 4  # old entries were overwritten

    def test_sample_shapes(self):
        buffer = ReplayBuffer(capacity=100, seed=0)
        for i in range(20):
            buffer.add(make_transition(i))
        states, actions, rewards, next_states, dones = buffer.sample(8)
        assert states.shape == (8, 3)
        assert actions.shape == (8, 2)
        assert rewards.shape == (8, 1)
        assert next_states.shape == (8, 3)
        assert dones.shape == (8, 1)
        assert states.dtype == np.float32

    def test_sample_clipped_to_size(self):
        buffer = ReplayBuffer(capacity=100)
        buffer.add(make_transition(0))
        states, *_ = buffer.sample(64)
        assert states.shape[0] == 1

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer().sample(4)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_done_flag_encoding(self):
        buffer = ReplayBuffer(seed=1)
        buffer.add(make_transition(0))  # done=True
        _, _, _, _, dones = buffer.sample(1)
        assert dones[0, 0] == 1.0

    def test_sampling_deterministic_per_seed(self):
        def collect(seed):
            buffer = ReplayBuffer(seed=seed)
            for i in range(10):
                buffer.add(make_transition(i))
            return buffer.sample(5)[2]

        np.testing.assert_array_equal(collect(3), collect(3))
