"""Tests for the DistrEdge planner facade."""

from __future__ import annotations

import pytest

from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.mdp import map_action_to_cuts
from repro.core.osds import OSDSConfig
from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import TabularProfile
from repro.runtime.oracles import profiles_by_device
from repro.runtime.plan import DistributionPlan


@pytest.fixture()
def planner(fast_ddpg_config):
    config = DistrEdgeConfig(
        alpha=0.75,
        num_random_splits=6,
        osds=OSDSConfig(max_episodes=6, ddpg=fast_ddpg_config, seed=0),
        seed=0,
    )
    return DistrEdge(config)


class TestCutsToRaw:
    def test_roundtrip_through_action_mapping(self):
        cuts = (3, 9, 12)
        raw = DistrEdge._cuts_to_raw(cuts, 16)
        assert map_action_to_cuts(raw, 16) == cuts

    def test_extreme_cuts(self):
        raw = DistrEdge._cuts_to_raw((0, 16), 16)
        assert map_action_to_cuts(raw, 16) == (0, 16)


class TestPlanning:
    def test_plan_detailed_structure(self, planner, small_model, duo_cluster, duo_network):
        result = planner.plan_detailed(small_model, duo_cluster, duo_network)
        assert isinstance(result.plan, DistributionPlan)
        assert result.plan.method == "distredge"
        assert result.plan.boundaries == result.lcpss.boundaries
        assert result.predicted_latency_ms == pytest.approx(result.osds.best_latency_ms)
        assert result.predicted_ips == pytest.approx(1000.0 / result.predicted_latency_ms)

    def test_plan_never_worse_than_offload(
        self, planner, small_model, duo_cluster, duo_network, duo_evaluator
    ):
        """With heuristic seeding the search space includes the offload
        corner, so DistrEdge cannot lose to single-device offloading."""
        plan = planner.plan(small_model, duo_cluster, duo_network)
        distredge_ms = duo_evaluator.evaluate(plan).end_to_end_ms
        offload_ms = min(
            duo_evaluator.evaluate(
                DistributionPlan.single_device(small_model, duo_cluster, i)
            ).end_to_end_ms
            for i in range(len(duo_cluster))
        )
        assert distredge_ms <= offload_ms * 1.02

    def test_partition_only_stage(self, planner, small_model, duo_cluster):
        result = planner.partition(small_model, duo_cluster)
        assert result.boundaries[0] == 0
        assert result.boundaries[-1] == small_model.num_spatial_layers

    def test_split_only_stage(self, planner, small_model, duo_cluster, duo_network):
        boundaries = [0, 6, small_model.num_spatial_layers]
        result = planner.split(small_model, boundaries, duo_cluster, duo_network)
        assert len(result.best_decisions) == 2

    def test_planning_with_profiles(self, planner, small_model, duo_cluster, duo_network):
        per_type = {}
        for device in duo_cluster:
            profiler = LatencyProfiler(device.dtype, noise_std=0.0)
            per_type[device.type_name] = TabularProfile.from_points(
                profiler.profile_model(small_model, heights_per_layer=8)
            )
        profiles = profiles_by_device(duo_cluster, per_type)
        plan = planner.plan(small_model, duo_cluster, duo_network, profiles=profiles)
        assert isinstance(plan, DistributionPlan)

    def test_heuristic_seeding_can_be_disabled(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        config = DistrEdgeConfig(
            num_random_splits=5,
            osds=OSDSConfig(max_episodes=4, ddpg=fast_ddpg_config, seed=0),
            seed=0,
            seed_with_heuristics=False,
        )
        plan = DistrEdge(config).plan(small_model, duo_cluster, duo_network)
        assert isinstance(plan, DistributionPlan)
