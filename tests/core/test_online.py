"""Tests for the online adaptation controllers (Section V-F)."""

from __future__ import annotations

import pytest

from repro.baselines import CoEdgePlanner
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.online import (
    OnlineDistrEdgeController,
    PeriodicReplanController,
    mean_cluster_throughput,
)
from repro.core.osds import OSDSConfig
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.streaming import StreamingSimulator


@pytest.fixture()
def dynamic_setup():
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70)] * 2)
    network = NetworkModel.from_devices(devices, kind="dynamic", seed=2)
    evaluator = PlanEvaluator(devices, network)
    return model, devices, network, evaluator


class TestMeanClusterThroughput:
    def test_constant_network(self):
        devices = make_cluster([("nano", 100), ("nano", 300)])
        network = NetworkModel.constant_from_devices(devices)
        assert mean_cluster_throughput(network, 0.0) == pytest.approx(200.0)


class TestPeriodicReplanController:
    def test_zero_threshold_replans_every_image(self, dynamic_setup):
        model, devices, network, evaluator = dynamic_setup
        planner = CoEdgePlanner()
        calls = []

        def planner_fn(t):
            calls.append(t)
            return planner.plan(model, devices, network)

        controller = PeriodicReplanController(
            planner_fn=planner_fn, network=network, replan_threshold=0.0, replan_delay_s=0.0
        )
        initial = planner.plan(model, devices, network)
        StreamingSimulator(evaluator, extra_gap_ms=500.0).run(
            initial, num_images=5, adaptation_hook=controller.adaptation_hook
        )
        assert len(calls) >= 4

    def test_delay_postpones_plan_switch(self, dynamic_setup):
        model, devices, network, evaluator = dynamic_setup
        planner = CoEdgePlanner()
        new_plan = planner.plan(model, devices, network)
        controller = PeriodicReplanController(
            planner_fn=lambda t: new_plan,
            network=network,
            replan_threshold=0.0,
            replan_delay_s=1e6,  # never becomes ready within the test
        )
        initial = DistributionPlan.single_device(model, devices, 0, method="initial")
        result = StreamingSimulator(evaluator, extra_gap_ms=200.0).run(
            initial, num_images=4, adaptation_hook=controller.adaptation_hook
        )
        assert result.method == "initial"
        assert controller.replan_log  # a replan was triggered but not delivered


class TestOnlineDistrEdgeController:
    def _make_controller(self, dynamic_setup, fast_ddpg_config):
        model, devices, network, evaluator = dynamic_setup
        distredge = DistrEdge(
            DistrEdgeConfig(
                num_random_splits=5,
                osds=OSDSConfig(max_episodes=4, ddpg=fast_ddpg_config, seed=0),
                seed=0,
            )
        )
        controller = OnlineDistrEdgeController(
            model=model,
            devices=devices,
            network=network,
            distredge=distredge,
            decision_interval_s=10.0,
            replan_threshold=10.0,  # effectively disabled for the fast test
            partition_replan_delay_s=30.0,
            finetune_episodes=3,
        )
        return model, devices, network, evaluator, controller

    def test_requires_initial_plan(self, dynamic_setup, fast_ddpg_config):
        *_, controller = self._make_controller(dynamic_setup, fast_ddpg_config)
        with pytest.raises(RuntimeError):
            controller.adaptation_hook(0.0, 0, None, [])

    def test_streaming_with_online_decisions(self, dynamic_setup, fast_ddpg_config):
        model, devices, network, evaluator, controller = self._make_controller(
            dynamic_setup, fast_ddpg_config
        )
        initial = controller.initial_plan(0.0)
        result = StreamingSimulator(evaluator, extra_gap_ms=5000.0).run(
            initial, num_images=6, adaptation_hook=controller.adaptation_hook
        )
        assert result.num_images == 6
        # The actor made at least one online decision refresh.
        assert len(controller.decision_log) >= 1
