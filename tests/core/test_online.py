"""Tests for the online adaptation controllers (Section V-F)."""

from __future__ import annotations

import pytest

from repro.baselines import CoEdgePlanner
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.online import (
    OnlineDistrEdgeController,
    PeriodicReplanController,
    mean_cluster_throughput,
)
from repro.core.osds import OSDSConfig
from repro.devices.specs import make_cluster
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.runtime.streaming import StreamingSimulator


@pytest.fixture()
def dynamic_setup():
    model = model_zoo.small_vgg(64)
    devices = make_cluster([("nano", 70)] * 2)
    network = NetworkModel.from_devices(devices, kind="dynamic", seed=2)
    evaluator = PlanEvaluator(devices, network)
    return model, devices, network, evaluator


class TestMeanClusterThroughput:
    def test_constant_network(self):
        devices = make_cluster([("nano", 100), ("nano", 300)])
        network = NetworkModel.constant_from_devices(devices)
        assert mean_cluster_throughput(network, 0.0) == pytest.approx(200.0)


class TestPeriodicReplanController:
    def test_zero_threshold_replans_every_image(self, dynamic_setup):
        model, devices, network, evaluator = dynamic_setup
        planner = CoEdgePlanner()
        calls = []

        def planner_fn(t):
            calls.append(t)
            return planner.plan(model, devices, network)

        controller = PeriodicReplanController(
            planner_fn=planner_fn, network=network, replan_threshold=0.0, replan_delay_s=0.0
        )
        initial = planner.plan(model, devices, network)
        StreamingSimulator(evaluator, extra_gap_ms=500.0).run(
            initial, num_images=5, adaptation_hook=controller.adaptation_hook
        )
        assert len(calls) >= 4

    def test_delay_postpones_plan_switch(self, dynamic_setup):
        model, devices, network, evaluator = dynamic_setup
        planner = CoEdgePlanner()
        new_plan = planner.plan(model, devices, network)
        controller = PeriodicReplanController(
            planner_fn=lambda t: new_plan,
            network=network,
            replan_threshold=0.0,
            replan_delay_s=1e6,  # never becomes ready within the test
        )
        initial = DistributionPlan.single_device(model, devices, 0, method="initial")
        result = StreamingSimulator(evaluator, extra_gap_ms=200.0).run(
            initial, num_images=4, adaptation_hook=controller.adaptation_hook
        )
        assert result.method == "initial"
        assert controller.replan_log  # a replan was triggered but not delivered


class TestOnlineDistrEdgeController:
    def _make_controller(self, dynamic_setup, fast_ddpg_config):
        model, devices, network, evaluator = dynamic_setup
        distredge = DistrEdge(
            DistrEdgeConfig(
                num_random_splits=5,
                osds=OSDSConfig(max_episodes=4, ddpg=fast_ddpg_config, seed=0),
                seed=0,
            )
        )
        controller = OnlineDistrEdgeController(
            model=model,
            devices=devices,
            network=network,
            distredge=distredge,
            decision_interval_s=10.0,
            replan_threshold=10.0,  # effectively disabled for the fast test
            partition_replan_delay_s=30.0,
            finetune_episodes=3,
        )
        return model, devices, network, evaluator, controller

    def test_requires_initial_plan(self, dynamic_setup, fast_ddpg_config):
        *_, controller = self._make_controller(dynamic_setup, fast_ddpg_config)
        with pytest.raises(RuntimeError):
            controller.adaptation_hook(0.0, 0, None, [])

    def test_streaming_with_online_decisions(self, dynamic_setup, fast_ddpg_config):
        model, devices, network, evaluator, controller = self._make_controller(
            dynamic_setup, fast_ddpg_config
        )
        initial = controller.initial_plan(0.0)
        result = StreamingSimulator(evaluator, extra_gap_ms=5000.0).run(
            initial, num_images=6, adaptation_hook=controller.adaptation_hook
        )
        assert result.num_images == 6
        # The actor made at least one online decision refresh.
        assert len(controller.decision_log) >= 1

    def test_candidate_refresh_never_regresses_active_plan(
        self, dynamic_setup, fast_ddpg_config
    ):
        """Regression guard for the batched candidate refresh (ROADMAP item).

        The online controller's refresh routes candidate scoring through the
        batch path, whose batched actor forward may round an action by an ulp
        and flip which candidate wins — documented as safe because a
        candidate only replaces the incumbent when it evaluates *strictly
        better* under the current conditions.  This test pins that guarantee:
        whenever the hook swaps the plan, the replacement's throughput under
        the conditions at that moment must beat the incumbent's.
        """
        from repro.runtime.batch import BatchPlanEvaluator

        model, devices, network, evaluator = dynamic_setup
        distredge = DistrEdge(
            DistrEdgeConfig(
                num_random_splits=5,
                osds=OSDSConfig(max_episodes=4, ddpg=fast_ddpg_config, seed=0),
                seed=0,
            )
        )
        controller = OnlineDistrEdgeController(
            model=model,
            devices=devices,
            network=network,
            distredge=distredge,
            decision_interval_s=0.0,  # refresh candidates on every hook call
            replan_threshold=10.0,  # keep the LC-PSS replan path out of the way
        )
        controller.initial_plan(0.0)
        # Start streaming from a deliberately poor incumbent (an equal split
        # re-balanced at every layer, paying maximal redistribution): the
        # first refresh must beat it — and every swap, this one included,
        # must satisfy the guard.
        from repro.nn.splitting import SplitDecision

        fine_boundaries = list(range(model.num_spatial_layers + 1))
        current = DistributionPlan(
            model,
            devices,
            fine_boundaries,
            [
                SplitDecision.equal(len(devices), v.output_height)
                for v in model.partition(fine_boundaries)
            ],
        )
        # Independent evaluator with the controller's input encoding: plan
        # evaluation is exact (bit-identical across engines), so this scores
        # plans exactly as the controller's internal guard did.
        check = BatchPlanEvaluator(
            devices,
            network,
            input_bytes_per_element=distredge.config.input_bytes_per_element,
        )
        swaps = 0
        for index, t in enumerate([5.0, 30.0, 70.0, 150.0, 400.0, 900.0]):
            replacement = controller.adaptation_hook(t, index, current, [])
            if replacement is None:
                continue
            swaps += 1
            incumbent_ms = check.evaluate(current, t_seconds=t).end_to_end_ms
            replacement_ms = check.evaluate(replacement, t_seconds=t).end_to_end_ms
            assert replacement_ms < incumbent_ms, (
                f"refresh at t={t} swapped to a plan with {replacement_ms:.3f} ms "
                f">= incumbent {incumbent_ms:.3f} ms"
            )
            current = replacement
        # The dynamic trace must have made at least one refresh act, or the
        # guard was never exercised.
        assert controller.decision_log, "no candidate refresh ran"
        assert swaps >= 1, "no refresh ever swapped the plan; guard untested"
