"""Tests for the Cp partition cost model (Eq. 3 / Eq. 4)."""

from __future__ import annotations

import pytest

from repro.core.cost import PartitionCostModel, partition_score, random_split_decisions
from repro.nn import model_zoo
from repro.nn.splitting import SplitDecision
from repro.utils.rng import as_rng


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


@pytest.fixture(scope="module")
def cost_model(model):
    return PartitionCostModel(model, num_devices=3, num_random_splits=10, seed=0)


class TestRandomSplitDecisions:
    def test_count_and_type(self):
        decisions = random_split_decisions(4, 32, 5, as_rng(0))
        assert len(decisions) == 5
        assert all(isinstance(d, SplitDecision) for d in decisions)
        assert all(sum(d.rows_per_device()) == 32 for d in decisions)

    def test_reproducible(self):
        a = random_split_decisions(3, 20, 4, as_rng(7))
        b = random_split_decisions(3, 20, 4, as_rng(7))
        assert [d.cuts for d in a] == [d.cuts for d in b]


class TestSampleCost:
    def test_single_device_has_no_overhead(self, model, cost_model):
        boundaries = model.single_volume_partition()
        volume = model.partition(boundaries)[0]
        decision = SplitDecision.single_device(0, 3, volume.output_height)
        cost = cost_model.sample_cost(boundaries, [decision])
        assert cost.operations == pytest.approx(model.backbone_macs)
        assert cost.normalized_operations == pytest.approx(1.0)

    def test_equal_split_increases_operations(self, model, cost_model):
        boundaries = model.single_volume_partition()
        volume = model.partition(boundaries)[0]
        decision = SplitDecision.equal(3, volume.output_height)
        cost = cost_model.sample_cost(boundaries, [decision])
        assert cost.normalized_operations > 1.0

    def test_layer_by_layer_increases_transmission(self, model, cost_model):
        coarse = [0, 6, model.num_spatial_layers]
        fine = model.layer_by_layer_partition()

        def mean_transmission(boundaries):
            rng = as_rng(0)
            volumes = model.partition(boundaries)
            total = 0.0
            for _ in range(5):
                decisions = [
                    random_split_decisions(3, v.output_height, 1, rng)[0] for v in volumes
                ]
                total += cost_model.sample_cost(boundaries, decisions).transmission_bytes
            return total

        assert mean_transmission(fine) > mean_transmission(coarse)

    def test_score_interpolates_alpha(self, model, cost_model):
        boundaries = [0, 6, model.num_spatial_layers]
        volumes = model.partition(boundaries)
        decisions = [SplitDecision.equal(3, v.output_height) for v in volumes]
        cost = cost_model.sample_cost(boundaries, decisions)
        assert cost.score(0.0) == pytest.approx(cost.normalized_operations)
        assert cost.score(1.0) == pytest.approx(cost.normalized_transmission)
        mid = cost.score(0.5)
        assert min(cost.normalized_operations, cost.normalized_transmission) <= mid
        assert mid <= max(cost.normalized_operations, cost.normalized_transmission)

    def test_decision_count_mismatch(self, model, cost_model):
        with pytest.raises(ValueError):
            cost_model.sample_cost([0, model.num_spatial_layers], [])


class TestMeanScore:
    def test_deterministic_given_seed(self, model):
        a = PartitionCostModel(model, 3, num_random_splits=8, seed=1).mean_score([0, 6, 12], 0.75)
        b = PartitionCostModel(model, 3, num_random_splits=8, seed=1).mean_score([0, 6, 12], 0.75)
        assert a == pytest.approx(b)

    def test_same_random_set_across_candidates(self, model):
        """Two calls on the same model instance reuse the same Rr_s draw."""
        cm = PartitionCostModel(model, 3, num_random_splits=6, seed=2)
        s1 = cm.mean_score([0, 6, 12], 0.75)
        s2 = cm.mean_score([0, 6, 12], 0.75)
        assert s1 == pytest.approx(s2)

    def test_alpha_validated(self, model, cost_model):
        with pytest.raises(ValueError):
            cost_model.mean_score([0, 12], 1.5)

    def test_partition_score_wrapper(self, model):
        score = partition_score(model, [0, 6, 12], num_devices=3, num_random_splits=5)
        assert score > 0

    def test_invalid_constructor_args(self, model):
        with pytest.raises(ValueError):
            PartitionCostModel(model, 0)
        with pytest.raises(ValueError):
            PartitionCostModel(model, 2, num_random_splits=0)


class TestScoreCache:
    """The mean-Cp memo eliminates LC-PSS re-voting without moving a bit."""

    def test_second_call_is_a_hit_with_identical_value(self, model):
        cm = PartitionCostModel(model, 3, num_random_splits=6, seed=2)
        first = cm.mean_score([0, 6, 12], 0.75)
        assert cm.cache_info()["misses"] == 1
        second = cm.mean_score([0, 6, 12], 0.75)
        assert cm.cache_info()["hits"] == 1
        assert second == first  # bit-identical, not just approximately equal

    def test_key_distinguishes_boundaries_and_alpha(self, model):
        cm = PartitionCostModel(model, 3, num_random_splits=6, seed=2)
        cm.mean_score([0, 6, 12], 0.75)
        cm.mean_score([0, 4, 12], 0.75)
        cm.mean_score([0, 6, 12], 0.5)
        assert cm.cache_info()["misses"] == 3
        assert cm.cache_info()["hits"] == 0

    def test_cached_value_matches_uncached_model(self, model):
        cached = PartitionCostModel(model, 3, num_random_splits=6, seed=2)
        cached.mean_score([0, 6, 12], 0.75)  # warm the cache
        fresh = PartitionCostModel(model, 3, num_random_splits=6, seed=2)
        assert cached.mean_score([0, 6, 12], 0.75) == fresh.mean_score([0, 6, 12], 0.75)
