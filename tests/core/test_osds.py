"""Tests for OSDS (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import SplitMDP
from repro.core.osds import OSDS, OSDSConfig
from repro.runtime.plan import DistributionPlan


@pytest.fixture()
def env(small_model, duo_cluster, duo_evaluator):
    return SplitMDP(small_model, [0, 4, 8, small_model.num_spatial_layers], duo_cluster, duo_evaluator)


class TestConfig:
    def test_paper_defaults(self):
        cfg = OSDSConfig()
        assert cfg.max_episodes == 4000
        assert cfg.delta_epsilon == pytest.approx(1.0 / 250.0)
        assert cfg.sigma_squared == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            OSDSConfig(max_episodes=0)
        with pytest.raises(ValueError):
            OSDSConfig(delta_epsilon=0)
        with pytest.raises(ValueError):
            OSDSConfig(sigma_squared=-1)


class TestEpsilonSchedule:
    def test_epsilon_decay(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        assert osds.epsilon(0) == pytest.approx(1.0)
        assert osds.epsilon(125) == pytest.approx(1.0 - 0.25)
        assert osds.epsilon(250) == pytest.approx(0.0)
        assert osds.epsilon(1000) == 0.0  # clipped, never negative


class TestRun:
    def test_run_returns_valid_plan(self, env, fast_osds_config):
        result = OSDS(env, fast_osds_config).run()
        assert isinstance(result.best_plan, DistributionPlan)
        assert result.best_latency_ms > 0
        assert result.episodes_run == fast_osds_config.max_episodes
        assert len(result.best_decisions) == env.num_volumes
        assert result.episode_latencies_ms.shape == (fast_osds_config.max_episodes,)

    def test_best_is_minimum_of_episodes(self, env, fast_osds_config):
        result = OSDS(env, fast_osds_config).run()
        assert result.best_latency_ms == pytest.approx(result.episode_latencies_ms.min())

    def test_seeded_search_never_worse_than_seeds(self, env, fast_osds_config):
        """Seed episodes are replayed verbatim, so the best result is at
        least as good as the best seed (here: the offload corner)."""
        offload_actions = [np.array([1.0], dtype=np.float32) for _ in range(env.num_volumes)]
        seed_latency, _ = env.rollout(offload_actions)
        result = OSDS(env, fast_osds_config).run(initial_decisions=[offload_actions])
        assert result.best_latency_ms <= seed_latency + 1e-6

    def test_reproducible_given_seed(self, env, small_model, duo_cluster, duo_evaluator, fast_ddpg_config):
        def run_once():
            fresh_env = SplitMDP(
                small_model, [0, 4, 8, small_model.num_spatial_layers], duo_cluster, duo_evaluator
            )
            cfg = OSDSConfig(max_episodes=5, ddpg=fast_ddpg_config, seed=11)
            return OSDS(fresh_env, cfg).run().best_latency_ms

        assert run_once() == pytest.approx(run_once())

    def test_patience_stops_early(self, env, fast_ddpg_config):
        cfg = OSDSConfig(max_episodes=50, ddpg=fast_ddpg_config, seed=0, patience=3)
        result = OSDS(env, cfg).run()
        assert result.episodes_run <= 50

    def test_greedy_rollout(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        osds.run()
        rollout = osds.greedy_rollout()
        assert rollout.best_latency_ms > 0
        assert len(rollout.best_decisions) == env.num_volumes

    def test_no_train_mode_skips_updates(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        osds.run(train=False)
        assert osds.agent.updates == 0


class TestBatchPathRouting:
    """Routing OSDS through the batch evaluator must not move a single bit."""

    def test_bit_identical_through_batch_evaluator(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        from repro.runtime.batch import BatchPlanEvaluator
        from repro.runtime.evaluator import PlanEvaluator

        boundaries = [0, 4, 8, small_model.num_spatial_layers]
        seed_actions = [
            [np.array([1.0], dtype=np.float32)] * len(boundaries[:-1]),
            [np.array([0.0], dtype=np.float32)] * len(boundaries[:-1]),
        ]

        def run_with(evaluator):
            env = SplitMDP(small_model, boundaries, duo_cluster, evaluator)
            cfg = OSDSConfig(max_episodes=6, ddpg=fast_ddpg_config, seed=3)
            return OSDS(env, cfg).run(initial_decisions=seed_actions)

        plain = run_with(PlanEvaluator(duo_cluster, duo_network, memoize_compute=False))
        batched = run_with(BatchPlanEvaluator(duo_cluster, duo_network))
        assert batched.best_latency_ms == plain.best_latency_ms
        assert np.array_equal(batched.episode_latencies_ms, plain.episode_latencies_ms)
        assert [d.cuts for d in batched.best_decisions] == [
            d.cuts for d in plain.best_decisions
        ]
        for p, q in zip(plain.agent.actor.parameters(), batched.agent.actor.parameters()):
            assert np.array_equal(p, q)
