"""Tests for OSDS (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import SplitMDP
from repro.core.osds import OSDS, OSDSConfig
from repro.runtime.plan import DistributionPlan


@pytest.fixture()
def env(small_model, duo_cluster, duo_evaluator):
    return SplitMDP(small_model, [0, 4, 8, small_model.num_spatial_layers], duo_cluster, duo_evaluator)


class TestConfig:
    def test_paper_defaults(self):
        cfg = OSDSConfig()
        assert cfg.max_episodes == 4000
        assert cfg.delta_epsilon == pytest.approx(1.0 / 250.0)
        assert cfg.sigma_squared == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            OSDSConfig(max_episodes=0)
        with pytest.raises(ValueError):
            OSDSConfig(delta_epsilon=0)
        with pytest.raises(ValueError):
            OSDSConfig(sigma_squared=-1)


class TestEpsilonSchedule:
    def test_epsilon_decay(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        assert osds.epsilon(0) == pytest.approx(1.0)
        assert osds.epsilon(125) == pytest.approx(1.0 - 0.25)
        assert osds.epsilon(250) == pytest.approx(0.0)
        assert osds.epsilon(1000) == 0.0  # clipped, never negative


class TestRun:
    def test_run_returns_valid_plan(self, env, fast_osds_config):
        result = OSDS(env, fast_osds_config).run()
        assert isinstance(result.best_plan, DistributionPlan)
        assert result.best_latency_ms > 0
        assert result.episodes_run == fast_osds_config.max_episodes
        assert len(result.best_decisions) == env.num_volumes
        assert result.episode_latencies_ms.shape == (fast_osds_config.max_episodes,)

    def test_best_is_minimum_of_episodes(self, env, fast_osds_config):
        result = OSDS(env, fast_osds_config).run()
        assert result.best_latency_ms == pytest.approx(result.episode_latencies_ms.min())

    def test_seeded_search_never_worse_than_seeds(self, env, fast_osds_config):
        """Seed episodes are replayed verbatim, so the best result is at
        least as good as the best seed (here: the offload corner)."""
        offload_actions = [np.array([1.0], dtype=np.float32) for _ in range(env.num_volumes)]
        seed_latency, _ = env.rollout(offload_actions)
        result = OSDS(env, fast_osds_config).run(initial_decisions=[offload_actions])
        assert result.best_latency_ms <= seed_latency + 1e-6

    def test_reproducible_given_seed(self, env, small_model, duo_cluster, duo_evaluator, fast_ddpg_config):
        def run_once():
            fresh_env = SplitMDP(
                small_model, [0, 4, 8, small_model.num_spatial_layers], duo_cluster, duo_evaluator
            )
            cfg = OSDSConfig(max_episodes=5, ddpg=fast_ddpg_config, seed=11)
            return OSDS(fresh_env, cfg).run().best_latency_ms

        assert run_once() == pytest.approx(run_once())

    def test_patience_stops_early(self, env, fast_ddpg_config):
        cfg = OSDSConfig(max_episodes=50, ddpg=fast_ddpg_config, seed=0, patience=3)
        result = OSDS(env, cfg).run()
        assert result.episodes_run <= 50

    def test_greedy_rollout(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        osds.run()
        rollout = osds.greedy_rollout()
        assert rollout.best_latency_ms > 0
        assert len(rollout.best_decisions) == env.num_volumes

    def test_no_train_mode_skips_updates(self, env, fast_osds_config):
        osds = OSDS(env, fast_osds_config)
        osds.run(train=False)
        assert osds.agent.updates == 0


class TestBatchPathRouting:
    """Routing OSDS through the batch evaluator must not move a single bit."""

    def test_bit_identical_through_batch_evaluator(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        from repro.runtime.batch import BatchPlanEvaluator
        from repro.runtime.evaluator import PlanEvaluator

        boundaries = [0, 4, 8, small_model.num_spatial_layers]
        seed_actions = [
            [np.array([1.0], dtype=np.float32)] * len(boundaries[:-1]),
            [np.array([0.0], dtype=np.float32)] * len(boundaries[:-1]),
        ]

        def run_with(evaluator):
            env = SplitMDP(small_model, boundaries, duo_cluster, evaluator)
            cfg = OSDSConfig(max_episodes=6, ddpg=fast_ddpg_config, seed=3)
            return OSDS(env, cfg).run(initial_decisions=seed_actions)

        plain = run_with(PlanEvaluator(duo_cluster, duo_network, memoize_compute=False))
        batched = run_with(BatchPlanEvaluator(duo_cluster, duo_network))
        assert batched.best_latency_ms == plain.best_latency_ms
        assert np.array_equal(batched.episode_latencies_ms, plain.episode_latencies_ms)
        assert [d.cuts for d in batched.best_decisions] == [
            d.cuts for d in plain.best_decisions
        ]
        for p, q in zip(plain.agent.actor.parameters(), batched.agent.actor.parameters()):
            assert np.array_equal(p, q)


class TestEpisodeBatching:
    """Execution width must never change a single bit of the outcome."""

    def _run(self, small_model, duo_cluster, duo_network, fast_ddpg_config, *,
             episode_batch, max_episodes=20, patience=None, seed=7, train=True,
             with_seeds=False):
        from repro.runtime.batch import BatchPlanEvaluator

        boundaries = [0, 4, 8, small_model.num_spatial_layers]
        env = SplitMDP(
            small_model, boundaries, duo_cluster, BatchPlanEvaluator(duo_cluster, duo_network)
        )
        cfg = OSDSConfig(
            max_episodes=max_episodes,
            ddpg=fast_ddpg_config,
            seed=seed,
            episode_batch=episode_batch,
            policy_refresh=8,
            patience=patience,
        )
        seeds = (
            [[np.array([1.0], dtype=np.float32)] * env.num_volumes,
             [np.array([0.0], dtype=np.float32)] * env.num_volumes]
            if with_seeds
            else None
        )
        return OSDS(env, cfg).run(train=train, initial_decisions=seeds)

    def _assert_identical(self, a, b):
        assert a.best_latency_ms == b.best_latency_ms
        assert [d.cuts for d in a.best_decisions] == [d.cuts for d in b.best_decisions]
        assert np.array_equal(a.episode_latencies_ms, b.episode_latencies_ms)
        assert a.episodes_run == b.episodes_run
        assert a.best_plan.head_device == b.best_plan.head_device
        assert a.best_plan.boundaries == b.best_plan.boundaries
        for p, q in zip(a.agent.actor.parameters(), b.agent.actor.parameters()):
            assert np.array_equal(p, q)
        for p, q in zip(a.agent.critic.parameters(), b.agent.critic.parameters()):
            assert np.array_equal(p, q)
        for p, q in zip(a.best_snapshot["actor"], b.best_snapshot["actor"]):
            assert np.array_equal(p, q)

    def _assert_buffers_identical(self, a, b):
        buf_a, buf_b = a.agent.buffer.transitions, b.agent.buffer.transitions
        assert len(buf_a) == len(buf_b)
        for t_a, t_b in zip(buf_a, buf_b):
            assert np.array_equal(t_a.state, t_b.state)
            assert np.array_equal(t_a.action, t_b.action)
            assert t_a.reward == t_b.reward
            assert np.array_equal(t_a.next_state, t_b.next_state)
            assert t_a.done == t_b.done

    def test_batched_bit_identical_to_sequential(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        sequential = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config, episode_batch=1
        )
        batched = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config, episode_batch=8
        )
        self._assert_identical(sequential, batched)
        self._assert_buffers_identical(sequential, batched)
        assert sequential.agent.updates == batched.agent.updates > 0

    def test_bit_identical_with_heuristic_seeds(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        sequential = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=1, with_seeds=True,
        )
        batched = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=8, with_seeds=True,
        )
        self._assert_identical(sequential, batched)
        self._assert_buffers_identical(sequential, batched)

    def test_bit_identical_on_patience_early_stop(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        sequential = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=1, max_episodes=40, patience=3,
        )
        batched = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=8, max_episodes=40, patience=3,
        )
        # The early stop fires inside a round: speculative trailing episodes
        # must be discarded without touching the buffer or the latencies.
        assert sequential.episodes_run < 40
        self._assert_identical(sequential, batched)
        self._assert_buffers_identical(sequential, batched)

    def test_width_choice_is_free(self, small_model, duo_cluster, duo_network, fast_ddpg_config):
        """Any execution width (even one not dividing policy_refresh) agrees."""
        reference = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config, episode_batch=1
        )
        for width in (3, 5, 16):
            other = self._run(
                small_model, duo_cluster, duo_network, fast_ddpg_config, episode_batch=width
            )
            self._assert_identical(reference, other)

    def test_rollout_only_mode_matches_too(
        self, small_model, duo_cluster, duo_network, fast_ddpg_config
    ):
        sequential = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=1, train=False,
        )
        batched = self._run(
            small_model, duo_cluster, duo_network, fast_ddpg_config,
            episode_batch=8, train=False,
        )
        self._assert_identical(sequential, batched)
        assert batched.agent.updates == 0
        assert len(batched.agent.buffer) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OSDSConfig(episode_batch=0)
        with pytest.raises(ValueError):
            OSDSConfig(policy_refresh=0)
