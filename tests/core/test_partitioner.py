"""Tests for LC-PSS (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.partitioner import LCPSS
from repro.nn import model_zoo


@pytest.fixture(scope="module")
def model():
    return model_zoo.small_vgg(64)


class TestLCPSS:
    def test_boundaries_are_valid_partition(self, model):
        result = LCPSS(model, num_devices=3, alpha=0.75, num_random_splits=8, seed=0).search()
        bounds = result.boundaries
        assert bounds[0] == 0 and bounds[-1] == model.num_spatial_layers
        assert bounds == sorted(set(bounds))
        # Must be usable directly as a partition scheme.
        model.partition(bounds)

    def test_alpha_zero_gives_fine_partition(self, model):
        """alpha = 0 ignores transmission, so the search keeps cutting until
        the recomputation overhead is gone (near layer-by-layer, paper)."""
        result = LCPSS(model, num_devices=3, alpha=0.0, num_random_splits=6, seed=0).search()
        assert result.num_volumes >= model.num_spatial_layers // 2
        # With alpha=0 the score is the normalised operation count; the final
        # partition removes essentially all halo recomputation.
        assert result.score == pytest.approx(1.0, abs=0.02)

    def test_alpha_one_gives_coarse_partition(self, model):
        result = LCPSS(model, num_devices=3, alpha=1.0, num_random_splits=6, seed=0).search()
        assert result.num_volumes <= 3

    def test_intermediate_alpha_between_extremes(self, model):
        fine = LCPSS(model, num_devices=3, alpha=0.0, num_random_splits=6, seed=0).search()
        coarse = LCPSS(model, num_devices=3, alpha=1.0, num_random_splits=6, seed=0).search()
        mid = LCPSS(model, num_devices=3, alpha=0.75, num_random_splits=6, seed=0).search()
        assert coarse.num_volumes <= mid.num_volumes <= fine.num_volumes

    def test_score_history_non_increasing(self, model):
        result = LCPSS(model, num_devices=3, alpha=0.5, num_random_splits=6, seed=0).search()
        assert all(b <= a + 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_deterministic_for_fixed_seed(self, model):
        a = LCPSS(model, num_devices=3, alpha=0.75, num_random_splits=6, seed=3).search()
        b = LCPSS(model, num_devices=3, alpha=0.75, num_random_splits=6, seed=3).search()
        assert a.boundaries == b.boundaries

    def test_max_passes_limits_refinement(self, model):
        result = LCPSS(
            model, num_devices=3, alpha=0.0, num_random_splits=4, seed=0, max_passes=1
        ).search()
        assert result.passes == 1

    def test_invalid_alpha(self, model):
        with pytest.raises(ValueError):
            LCPSS(model, num_devices=3, alpha=1.5)

    def test_single_device_partitioning_still_works(self, model):
        result = LCPSS(model, num_devices=1, alpha=0.75, num_random_splits=4, seed=0).search()
        assert result.boundaries[0] == 0

    def test_vgg16_default_alpha_reasonable_volume_count(self):
        """At the paper's alpha=0.75 VGG-16 lands between 3 and 8 volumes."""
        vgg = model_zoo.vgg16()
        result = LCPSS(vgg, num_devices=4, alpha=0.75, num_random_splits=10, seed=0).search()
        assert 3 <= result.num_volumes <= 8
