"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "--devices", "xavier:300", "nano:50"])
        assert args.command == "plan"
        assert args.method == "distredge"
        assert args.model == "vgg16"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--devices", "nano", "--model", "alexnet"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scenario == "DB"
        assert args.workers == 1

    def test_plan_scenario_flag(self):
        args = build_parser().parse_args(
            ["plan", "--scenario", "gen:n=8,seed=3", "--workers", "4"]
        )
        assert args.scenario == "gen:n=8,seed=3"
        assert args.workers == 4
        assert args.devices is None

    def test_plan_devices_and_scenario_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "--devices", "nano", "--scenario", "DB"]
            )

    def test_plan_requires_a_cluster(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestCommands:
    def test_plan_baseline_and_evaluate_roundtrip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:200", "nano:200",
            "--method", "aofl",
            "--output", str(plan_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted latency" in out
        assert plan_path.exists()
        data = json.loads(plan_path.read_text())
        assert data["method"] == "aofl"

        code = main(["evaluate", str(plan_path), "--bandwidth", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPS" in out

    def test_plan_distredge_small_budget(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:100", "nano:100",
            "--method", "distredge",
            "--episodes", "4",
            "--random-splits", "5",
        ])
        assert code == 0
        assert "distredge" in capsys.readouterr().out

    def test_compare_unknown_scenario(self, capsys):
        code = main(["compare", "--scenario", "ZZ", "--episodes", "2", "--random-splits", "3"])
        assert code == 2

    def test_plan_generated_scenario(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "gen:n=4,bw=200,types=nano",
            "--method", "aofl",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gen-4d-nano-bw200-constant-s0" in out
        assert "predicted latency" in out
        # A single-plan evaluation cannot shard; the CLI says so instead of
        # silently spinning up (and wasting) a worker pool.
        assert "no effect on a single-plan evaluation" in out

    def test_plan_catalogue_scenario(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "DA",
            "--method", "modnn",
        ])
        assert code == 0
        assert "scenario: DA" in capsys.readouterr().out

    def test_plan_catalogue_scenario_with_bandwidth(self, capsys):
        """--bandwidth reshapes a catalogue scenario's links (so plan and
        compare can be run against the same fleet)."""
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "DA",
            "--bandwidth", "300",
            "--method", "modnn",
        ])
        assert code == 0
        assert "scenario: DA-300Mbps" in capsys.readouterr().out

    def test_plan_malformed_generator_spec(self, capsys):
        code = main(["plan", "--model", "small_vgg", "--scenario", "gen:bogus=1"])
        assert code == 2
        assert "unknown generator option" in capsys.readouterr().err

    def test_plan_unknown_scenario_message_unwrapped(self, capsys):
        code = main(["plan", "--model", "small_vgg", "--scenario", "ZZ"])
        assert code == 2
        err = capsys.readouterr().err
        # The KeyError payload is printed bare, not as its repr.
        assert err.startswith("unknown scenario 'ZZ'")

    def test_plan_and_compare_resolve_the_same_fleet(self):
        """Regression: a scenario name must mean one fleet in both commands."""
        from repro.cli import _scenario_from_args

        db = _scenario_from_args("DB", None)
        assert db.bandwidths_mbps == [200.0] * 4  # Table-I default, both commands
        reshaped = _scenario_from_args("DB", 300.0)
        assert reshaped.name == "DB-300Mbps"
        assert reshaped.bandwidths_mbps == [300.0] * 4
        # Names plan accepts are reachable from compare too (shared resolver).
        assert _scenario_from_args("homog-nano", None) is not None
        assert _scenario_from_args("NA-xavier", None) is not None

    def test_compare_bandwidth_ignored_for_generated_scenarios(self, capsys):
        code = main(["compare", "--scenario", "gen:bogus=1", "--bandwidth", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--bandwidth does not apply to gen: scenarios" in err
        assert "unknown generator option" in err
