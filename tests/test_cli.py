"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "--devices", "xavier:300", "nano:50"])
        assert args.command == "plan"
        assert args.method == "distredge"
        assert args.model == "vgg16"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--devices", "nano", "--model", "alexnet"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scenario == "DB"
        assert args.workers == 1

    def test_plan_scenario_flag(self):
        args = build_parser().parse_args(
            ["plan", "--scenario", "gen:n=8,seed=3", "--workers", "4"]
        )
        assert args.scenario == "gen:n=8,seed=3"
        assert args.workers == 4
        assert args.devices is None

    def test_plan_devices_and_scenario_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "--devices", "nano", "--scenario", "DB"]
            )

    def test_plan_requires_a_cluster(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestCommands:
    def test_plan_baseline_and_evaluate_roundtrip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:200", "nano:200",
            "--method", "aofl",
            "--output", str(plan_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted latency" in out
        assert plan_path.exists()
        data = json.loads(plan_path.read_text())
        assert data["method"] == "aofl"

        code = main(["evaluate", str(plan_path), "--bandwidth", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPS" in out

    def test_plan_distredge_small_budget(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:100", "nano:100",
            "--method", "distredge",
            "--episodes", "4",
            "--random-splits", "5",
        ])
        assert code == 0
        assert "distredge" in capsys.readouterr().out

    def test_compare_unknown_scenario(self, capsys):
        code = main(["compare", "--scenario", "ZZ", "--episodes", "2", "--random-splits", "3"])
        assert code == 2

    def test_plan_generated_scenario(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "gen:n=4,bw=200,types=nano",
            "--method", "aofl",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gen-4d-nano-bw200-constant-s0" in out
        assert "predicted latency" in out
        # A single-plan evaluation cannot shard; the CLI says so instead of
        # silently spinning up (and wasting) a worker pool.
        assert "no effect on a single-plan evaluation" in out

    def test_plan_catalogue_scenario(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "DA",
            "--method", "modnn",
        ])
        assert code == 0
        assert "scenario: DA" in capsys.readouterr().out

    def test_plan_catalogue_scenario_with_bandwidth(self, capsys):
        """--bandwidth reshapes a catalogue scenario's links (so plan and
        compare can be run against the same fleet)."""
        code = main([
            "plan",
            "--model", "small_vgg",
            "--scenario", "DA",
            "--bandwidth", "300",
            "--method", "modnn",
        ])
        assert code == 0
        assert "scenario: DA-300Mbps" in capsys.readouterr().out

    def test_plan_malformed_generator_spec(self, capsys):
        code = main(["plan", "--model", "small_vgg", "--scenario", "gen:bogus=1"])
        assert code == 2
        assert "unknown generator option" in capsys.readouterr().err

    def test_plan_unknown_scenario_message_unwrapped(self, capsys):
        code = main(["plan", "--model", "small_vgg", "--scenario", "ZZ"])
        assert code == 2
        err = capsys.readouterr().err
        # The KeyError payload is printed bare, not as its repr.
        assert err.startswith("unknown scenario 'ZZ'")

    def test_plan_and_compare_resolve_the_same_fleet(self):
        """Regression: a scenario name must mean one fleet in both commands."""
        from repro.cli import _scenario_from_args

        db = _scenario_from_args("DB", None)
        assert db.bandwidths_mbps == [200.0] * 4  # Table-I default, both commands
        reshaped = _scenario_from_args("DB", 300.0)
        assert reshaped.name == "DB-300Mbps"
        assert reshaped.bandwidths_mbps == [300.0] * 4
        # Names plan accepts are reachable from compare too (shared resolver).
        assert _scenario_from_args("homog-nano", None) is not None
        assert _scenario_from_args("NA-xavier", None) is not None

    def test_compare_bandwidth_ignored_for_generated_scenarios(self, capsys):
        code = main(["compare", "--scenario", "gen:bogus=1", "--bandwidth", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--bandwidth does not apply to gen: scenarios" in err
        assert "unknown generator option" in err


class TestEvaluateScenario:
    """`evaluate --scenario` re-evaluates saved plans on plan/compare fleets."""

    def _save_plan(self, tmp_path, scenario):
        plan_path = tmp_path / "plan.json"
        code = main([
            "plan", "--model", "small_vgg", "--scenario", scenario,
            "--method", "aofl", "--output", str(plan_path),
        ])
        assert code == 0
        return plan_path

    def test_reevaluate_on_matching_generated_fleet(self, tmp_path, capsys):
        spec = "gen:n=4,bw=200,types=nano"
        plan_path = self._save_plan(tmp_path, spec)
        capsys.readouterr()
        code = main(["evaluate", str(plan_path), "--scenario", spec])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: gen-4d-nano-bw200-constant-s0" in out
        assert "IPS" in out

    def test_bandwidth_reshapes_catalogue_scenario(self, tmp_path, capsys):
        plan_path = self._save_plan(tmp_path, "DA")
        capsys.readouterr()
        code = main(["evaluate", str(plan_path), "--scenario", "DA", "--bandwidth", "50"])
        assert code == 0
        assert "scenario: DA-50Mbps" in capsys.readouterr().out

    def test_mismatched_fleet_rejected(self, tmp_path, capsys):
        plan_path = self._save_plan(tmp_path, "gen:n=4,bw=200,types=nano")
        capsys.readouterr()
        code = main(["evaluate", str(plan_path), "--scenario", "DB"])
        assert code == 2
        assert "does not match the plan's devices" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, tmp_path, capsys):
        plan_path = self._save_plan(tmp_path, "gen:n=4,bw=200,types=nano")
        capsys.readouterr()
        code = main(["evaluate", str(plan_path), "--scenario", "ZZ"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_workers_flag_notes_single_plan(self, tmp_path, capsys):
        spec = "gen:n=4,bw=200,types=nano"
        plan_path = self._save_plan(tmp_path, spec)
        capsys.readouterr()
        code = main(["evaluate", str(plan_path), "--scenario", spec, "--workers", "4"])
        assert code == 0
        assert "no effect on a single-plan evaluation" in capsys.readouterr().out


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.mode == "batched"
        assert args.duration == 30.0
        assert args.tenants is None

    def test_serve_two_tenants_batched(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg",
            "--tenant", "coedge", "--tenant", "offload",
            "--duration", "5", "--rate", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Distinct methods keep bare names (same rule as harness.serve_scenario).
        assert "coedge" in out and "offload" in out
        assert "coedge-0" not in out
        assert "TOTAL" in out
        assert "p95_ms" in out

    def test_serve_parity_mode(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg", "--tenant", "offload",
            "--duration", "5", "--mode", "parity",
        ])
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_serve_explicit_traffic_and_slo(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg",
            "--tenant", "coedge", "--tenant", "offload",
            "--traffic", "traffic:mmpp,low=1,high=20,seed=3",
            "--deadline-ms", "8", "--deadline-ms", "1000",
            "--queue-capacity", "16",
            "--duration", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO violations" in out or "miss%" in out

    def test_serve_malformed_traffic_spec(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg", "--tenant", "offload",
            "--traffic", "traffic:warp,rate=3", "--duration", "2",
        ])
        assert code == 2
        assert "unknown traffic kind" in capsys.readouterr().err

    def test_serve_unknown_tenant_method(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--tenant", "warpdrive", "--duration", "2",
        ])
        assert code == 2
        assert "unknown tenant method" in capsys.readouterr().err

    def test_serve_broadcast_mismatch(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg",
            "--tenant", "coedge", "--tenant", "offload", "--tenant", "modnn",
            "--deadline-ms", "5", "--deadline-ms", "6",
            "--duration", "2",
        ])
        assert code == 2
        assert "--deadline-ms" in capsys.readouterr().err

    def test_serve_tenant_model_override(self, capsys):
        code = main([
            "serve", "--scenario", "gen:n=4,bw=200,types=nano",
            "--model", "small_vgg",
            "--tenant", "offload@tiny_cnn",
            "--duration", "3",
        ])
        assert code == 0
        assert "offload" in capsys.readouterr().out


class TestServeControlPlane:
    GEN = "gen:n=2,seed=3,types=nano,bw=70"
    COMMON = [
        "serve", "--scenario", GEN, "--tenant", "coedge",
        "--model", "small_vgg",
        "--traffic", "traffic:poisson,rate=150,seed=11",
        "--deadline-ms", "40", "--duration", "2",
        "--contention", "--admission", "predictive", "--slots", "4",
    ]

    def test_control_flags_parse(self):
        args = build_parser().parse_args(self.COMMON + [
            "--on-predicted-miss", "requeue", "--window-ms", "500",
            "--plan-capacity", "--fleet-range", "1:4",
            "--target-miss-rate", "0.05",
        ])
        assert args.admission == "predictive"
        assert args.on_predicted_miss == "requeue"
        assert args.window_ms == 500.0
        assert args.plan_capacity and args.fleet_range == "1:4"
        assert args.target_miss_rate == 0.05
        assert args.slots == [4]

    def test_admission_requires_contention(self, capsys):
        code = main([
            "serve", "--scenario", self.GEN, "--admission", "predictive",
        ])
        assert code == 2
        assert "--contention" in capsys.readouterr().err

    def test_window_ms_requires_contention(self, capsys):
        code = main(["serve", "--scenario", self.GEN, "--window-ms", "500"])
        assert code == 2
        assert "--contention" in capsys.readouterr().err

    def test_plan_capacity_requires_contention(self, capsys):
        code = main([
            "serve", "--scenario", self.GEN, "--plan-capacity",
        ])
        assert code == 2
        assert "--contention" in capsys.readouterr().err

    def test_plan_capacity_requires_generator_scenario(self, capsys):
        code = main([
            "serve", "--scenario", "DB", "--contention",
            "--admission", "predictive", "--plan-capacity",
        ])
        assert code == 2
        assert "gen:" in capsys.readouterr().err

    def test_plan_capacity_and_autoscale_exclusive(self, capsys):
        code = main(self.COMMON + ["--plan-capacity", "--autoscale"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_fleet_range(self, capsys):
        code = main(self.COMMON + ["--plan-capacity", "--fleet-range", "4"])
        assert code == 2
        assert "MIN:MAX" in capsys.readouterr().err

    def test_serve_predictive_admission_run(self, capsys):
        code = main(self.COMMON + ["--window-ms", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "denied" in out

    def test_serve_predictive_parity(self, capsys):
        code = main(self.COMMON + [
            "--mode", "parity", "--on-predicted-miss", "requeue",
        ])
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_plan_capacity_run_writes_report(self, tmp_path, capsys):
        report = tmp_path / "capacity.json"
        code = main(self.COMMON + [
            "--plan-capacity", "--fleet-range", "1:3",
            "--target-miss-rate", "0.1",
            "--report-json", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimum fleet" in out or "no feasible" in out
        payload = json.loads(report.read_text())
        assert payload["strategy"] == "binary"
        assert payload["num_probe_runs"] == len(payload["probes"])

    def test_autoscale_run_writes_report(self, tmp_path, capsys):
        report = tmp_path / "autoscale.json"
        code = main(self.COMMON + [
            "--autoscale", "--fleet-range", "1:3",
            "--windows", "2", "--window-s", "1",
            "--report-json", str(report),
        ])
        assert code == 0
        assert "autoscaled serving" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert len(payload["windows"]) == 2
        assert payload["device_trajectory"][0] == 1


class TestServeObservability:
    GEN = "gen:n=2,seed=3,types=nano,bw=70"
    COMMON = [
        "serve", "--scenario", GEN, "--tenant", "coedge",
        "--model", "small_vgg",
        "--traffic", "traffic:poisson,rate=150,seed=11",
        "--deadline-ms", "40", "--duration", "2",
    ]

    def test_trace_json_is_chrome_loadable(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(self.COMMON + ["--trace-json", str(trace)])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        phases = {record["ph"] for record in payload["traceEvents"]}
        assert {"M", "i"} <= phases
        names = {record["name"] for record in payload["traceEvents"]}
        assert "serve" in names and "arrive" in names

    def test_metrics_json_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(self.COMMON + ["--metrics-json", str(metrics)])
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        payload = json.loads(metrics.read_text())
        assert payload["repro_requests_arrived_total"]["type"] == "counter"
        assert "repro_latency_ms" in payload

    def test_profile_prints_wall_clock_table(self, capsys):
        code = main(self.COMMON + ["--profile"])
        assert code == 0
        assert "excluded from parity" in capsys.readouterr().out

    def test_parity_mode_carries_the_tracer(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(self.COMMON + [
            "--mode", "parity", "--trace-json", str(trace),
        ])
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_report_json_carries_provenance(self, tmp_path):
        report = tmp_path / "report.json"
        code = main(self.COMMON + ["--report-json", str(report)])
        assert code == 0
        provenance = json.loads(report.read_text())["provenance"]
        assert provenance["scenario"] == self.GEN
        assert provenance["argv"][0] == "serve"
        assert provenance["repro_version"]

    def test_figure_rejects_observability_flags(self, capsys):
        code = main(self.COMMON + ["--figure", "--profile"])
        assert code == 2
        assert "single serving run" in capsys.readouterr().err

    def test_control_plane_rejects_metrics_and_profile(self, capsys):
        code = main(self.COMMON + [
            "--contention", "--admission", "predictive",
            "--plan-capacity", "--metrics-json", "x.json",
        ])
        assert code == 2
        assert "--trace-json" in capsys.readouterr().err

    def test_plan_capacity_writes_control_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(self.COMMON + [
            "--contention", "--admission", "predictive", "--slots", "4",
            "--plan-capacity", "--fleet-range", "1:3",
            "--target-miss-rate", "0.1", "--trace-json", str(trace),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        names = {r["name"] for r in json.loads(trace.read_text())["traceEvents"]}
        assert "capacity_probe" in names

    def test_plan_profile_flag(self, capsys):
        code = main([
            "plan", "--model", "small_vgg",
            "--devices", "nano:70", "nano:70",
            "--method", "coedge", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan.search" in out and "plan.evaluate" in out
