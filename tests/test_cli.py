"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "--devices", "xavier:300", "nano:50"])
        assert args.command == "plan"
        assert args.method == "distredge"
        assert args.model == "vgg16"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--devices", "nano", "--model", "alexnet"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scenario == "DB"


class TestCommands:
    def test_plan_baseline_and_evaluate_roundtrip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:200", "nano:200",
            "--method", "aofl",
            "--output", str(plan_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted latency" in out
        assert plan_path.exists()
        data = json.loads(plan_path.read_text())
        assert data["method"] == "aofl"

        code = main(["evaluate", str(plan_path), "--bandwidth", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPS" in out

    def test_plan_distredge_small_budget(self, capsys):
        code = main([
            "plan",
            "--model", "small_vgg",
            "--devices", "xavier:100", "nano:100",
            "--method", "distredge",
            "--episodes", "4",
            "--random-splits", "5",
        ])
        assert code == 0
        assert "distredge" in capsys.readouterr().out

    def test_compare_unknown_scenario(self, capsys):
        code = main(["compare", "--scenario", "ZZ", "--episodes", "2", "--random-splits", "3"])
        assert code == 2
